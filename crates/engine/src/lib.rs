//! The execution engine substrate.
//!
//! The paper's prototype delegates batch processing (proactive training) and
//! stream processing (online learning, query answering) to Apache Spark
//! (§4.5: "any data processing platform capable of processing data both in
//! batch mode and streaming mode is a suitable execution engine"). This
//! crate is that substrate at laptop scale: an [`ExecutionEngine`] executes
//! chunk-level data-parallel operations either sequentially or on a
//! **persistent worker pool** — threads are created once per worker count
//! (process-wide) and reused across calls, fed over a crossbeam channel.
//!
//! Work is distributed in contiguous shards: each task moves an owned slice
//! of the input and writes its results through a disjoint `chunks_mut`
//! window of the output vector, so no per-item locking is needed and input
//! order is preserved (the property the deployment loop relies on when
//! unioning materialized and re-materialized chunks before a training step).
//!
//! Determinism contract: [`ExecutionEngine::map`] preserves input order,
//! [`ExecutionEngine::map_reduce`] folds in input order, and [`tree_reduce`]
//! combines partial results in a fixed shape that depends only on the number
//! of parts — never on worker count or scheduling — so floating-point
//! results are bit-identical across engines.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, OnceLock, PoisonError};

use cdp_faults::{FaultHook, InjectedWorkerPanic, NoFaults, WorkerOrder, MAX_WORKER_RESTARTS};
use cdp_obs::{Metrics, SpanContext, Tracer};
use crossbeam::channel::{self, Sender};

/// Locks `mutex`, recovering from poisoning.
///
/// Every engine mutex guards simple scalar state (a registry map, a
/// countdown, a panic slot) that stays consistent even when the holder
/// unwinds mid-critical-section, so poisoning carries no information here.
/// Propagating it instead (the old `.expect(...)`) crashed the deployment
/// thread on the very fault PR 2's worker-restart machinery exists to
/// absorb.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Contiguous shards handed out per worker in one [`ExecutionEngine::map`]
/// call: a few per worker so a straggling shard re-balances onto idle
/// workers without giving up contiguity.
const SHARDS_PER_WORKER: usize = 4;

/// An erased unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads fed over a crossbeam channel.
///
/// Pools are process-global, keyed by worker count: the first
/// `Threaded { workers: w }` call spawns the `w` threads, every later call
/// with the same count reuses them (they block on the channel when idle).
struct WorkerPool {
    sender: Sender<Job>,
}

/// Completion barrier for one batch of scoped tasks.
struct Barrier {
    remaining: Mutex<usize>,
    done: Condvar,
    /// First worker panic payload, re-raised on the submitting thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let (sender, receiver) = channel::unbounded::<Job>();
        for i in 0..workers {
            let receiver = receiver.clone();
            std::thread::Builder::new()
                .name(format!("cdp-engine-{i}"))
                .spawn(move || {
                    // Jobs are pre-wrapped in catch_unwind, so a panicking
                    // task never kills its worker; the loop only ends if the
                    // sender side is dropped (process exit).
                    while let Ok(job) = receiver.recv() {
                        job();
                    }
                })
                .expect("spawn engine worker");
        }
        Self { sender }
    }

    /// The process-wide pool for `workers` threads (created on first use).
    fn global(workers: usize) -> Arc<WorkerPool> {
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
        let registry = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut registry = lock_ignore_poison(registry);
        Arc::clone(
            registry
                .entry(workers)
                .or_insert_with(|| Arc::new(WorkerPool::new(workers))),
        )
    }

    /// Runs `tasks` on the pool and blocks until every one has finished.
    ///
    /// Tasks may borrow from the caller's stack: the completion barrier
    /// guarantees no task outlives this call, even when one panics. If any
    /// task panicked, the *first* payload is re-raised here (after all other
    /// tasks finished), so `panic::catch_unwind` around the call observes
    /// the original payload.
    fn run_scoped<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>, metrics: &Metrics) {
        let barrier = Arc::new(Barrier {
            remaining: Mutex::new(tasks.len()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        for task in tasks {
            let barrier = Arc::clone(&barrier);
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(task)) {
                    // Keep the first payload; any later one is dropped
                    // *outside* the slot lock and behind its own
                    // catch_unwind: a payload whose Drop panics while the
                    // lock is held would kill this worker before the
                    // decrement below and deadlock the barrier.
                    let extra = {
                        let mut slot = lock_ignore_poison(&barrier.panic);
                        if slot.is_none() {
                            *slot = Some(payload);
                            None
                        } else {
                            Some(payload)
                        }
                    };
                    if let Some(extra) = extra {
                        let _ = panic::catch_unwind(AssertUnwindSafe(move || drop(extra)));
                    }
                }
                let mut remaining = lock_ignore_poison(&barrier.remaining);
                *remaining -= 1;
                if *remaining == 0 {
                    barrier.done.notify_all();
                }
            });
            // SAFETY: this function blocks below until `remaining` hits
            // zero, i.e. until every queued job has run to completion, so
            // all borrows captured by the tasks outlive their execution.
            // The transmute only erases the lifetime; the vtable and layout
            // of the boxed closure are unchanged.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
            self.sender
                .send(job)
                .expect("engine workers never disconnect");
        }
        let wait_span = metrics.span("engine.barrier_wait_secs");
        let mut remaining = lock_ignore_poison(&barrier.remaining);
        while *remaining > 0 {
            remaining = barrier
                .done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(remaining);
        wait_span.finish();
        let payload = lock_ignore_poison(&barrier.panic).take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

/// A worker failure the engine could not recover from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A worker panicked and (for injected panics) exhausted its restart
    /// budget; carries the panic message.
    WorkerPanic(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanic(msg) => write!(f, "worker panic: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    fn from_payload(payload: Box<dyn Any + Send>) -> Self {
        if payload.downcast_ref::<InjectedWorkerPanic>().is_some() {
            EngineError::WorkerPanic("injected worker panic exhausted restarts".to_owned())
        } else if let Some(msg) = payload.downcast_ref::<String>() {
            EngineError::WorkerPanic(msg.clone())
        } else if let Some(msg) = payload.downcast_ref::<&str>() {
            EngineError::WorkerPanic((*msg).to_owned())
        } else {
            EngineError::WorkerPanic("non-string panic payload".to_owned())
        }
    }
}

/// Installs (once, process-wide) a panic hook that silences injected worker
/// panics — they are part of normal fault-injection operation and would
/// otherwise spam stderr with backtrace headers — while forwarding every
/// other panic to the previously installed hook.
fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<InjectedWorkerPanic>()
                .is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Physically acts out the retryable part of a worker-fault order: each
/// injected panic is a *real* `panic_any` unwind caught right here, exactly
/// what a supervisor restarting a crashed worker observes. Returns `Err`
/// when the order exceeds the restart budget (the fatal case).
///
/// Injected panics always fire at shard entry — before any input item has
/// been consumed — so a restart re-runs the shard from scratch with no
/// items lost; this is what keeps results identical to the fault-free run.
fn act_injected_panics(panics: u32) -> Result<(), EngineError> {
    for _ in 0..panics.min(MAX_WORKER_RESTARTS) {
        let unwound = panic::catch_unwind(|| panic::panic_any(InjectedWorkerPanic));
        debug_assert!(unwound.is_err());
    }
    if panics > MAX_WORKER_RESTARTS {
        return Err(EngineError::WorkerPanic(
            "injected worker panic exhausted restarts".to_owned(),
        ));
    }
    Ok(())
}

/// A chunk-parallel execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionEngine {
    /// Process items one by one on the calling thread.
    #[default]
    Sequential,
    /// Process items on a persistent pool of `workers` OS threads.
    Threaded {
        /// Number of worker threads (≥ 1).
        workers: usize,
    },
}

impl ExecutionEngine {
    /// A threaded engine sized to the machine (minimum 2 workers).
    pub fn threaded_auto() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .max(2);
        ExecutionEngine::Threaded { workers }
    }

    /// Engine display name.
    pub fn name(&self) -> String {
        match self {
            ExecutionEngine::Sequential => "sequential".to_owned(),
            ExecutionEngine::Threaded { workers } => format!("threaded×{workers}"),
        }
    }

    /// Worker-thread count (1 for the sequential engine).
    pub fn workers(&self) -> usize {
        match *self {
            ExecutionEngine::Sequential => 1,
            ExecutionEngine::Threaded { workers } => workers.max(1),
        }
    }

    /// Applies `f` to every item, returning outputs in input order.
    ///
    /// `f` must be `Sync` because workers share it. Items are distributed
    /// in contiguous shards (a few per worker) pulled from a shared queue,
    /// so per-item cost imbalance is load-balanced; each shard writes
    /// through its own disjoint slice of the output, so results need no
    /// locking and arrive in input order.
    ///
    /// # Panics
    /// If `f` panics on any item, the first worker's payload is re-raised
    /// on the calling thread once all shards have finished.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.map_observed(items, f, &Metrics::disabled())
    }

    /// [`ExecutionEngine::map`] with engine metrics recorded into
    /// `metrics`: `engine.map_calls`, `engine.tasks` (shards submitted),
    /// `engine.map_secs`, and (threaded) `engine.barrier_wait_secs`.
    pub fn map_observed<T, U, F>(&self, items: Vec<T>, f: F, metrics: &Metrics) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.map_traced(items, f, metrics, &Tracer::disabled(), None)
    }

    /// [`ExecutionEngine::map_observed`] with causal spans: opens an
    /// `engine.map` span under `parent` and one `engine.task` child per
    /// shard *on the worker thread executing it*, so the trace tree spans
    /// threads ([`SpanContext`] is `Copy` and crosses into pool tasks).
    pub fn map_traced<T, U, F>(
        &self,
        items: Vec<T>,
        f: F,
        metrics: &Metrics,
        tracer: &Tracer,
        parent: Option<SpanContext>,
    ) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let map_span = tracer.child_of("engine.map", parent);
        let map_ctx = map_span.context();
        let _map_span_secs = metrics.span("engine.map_secs");
        metrics.counter("engine.map_calls").inc();
        match *self {
            ExecutionEngine::Sequential => {
                metrics.counter("engine.tasks").add(1);
                let _task_span = tracer.child_of("engine.task", map_ctx);
                items.into_iter().map(f).collect()
            }
            ExecutionEngine::Threaded { workers } => {
                let n = items.len();
                if n == 0 {
                    return Vec::new();
                }
                let workers = workers.max(1);
                let pool = WorkerPool::global(workers);
                let shard_len = n.div_ceil((workers * SHARDS_PER_WORKER).min(n));

                // Move the items into owned contiguous shards.
                let mut shards: Vec<Vec<T>> = Vec::with_capacity(n.div_ceil(shard_len));
                let mut iter = items.into_iter();
                loop {
                    let shard: Vec<T> = iter.by_ref().take(shard_len).collect();
                    if shard.is_empty() {
                        break;
                    }
                    shards.push(shard);
                }

                let mut outputs: Vec<Option<U>> = Vec::with_capacity(n);
                outputs.resize_with(n, || None);
                let f = &f;
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = outputs
                    .chunks_mut(shard_len)
                    .zip(shards)
                    .map(|(out, shard)| {
                        Box::new(move || {
                            let _task_span = tracer.child_of("engine.task", map_ctx);
                            for (slot, item) in out.iter_mut().zip(shard) {
                                *slot = Some(f(item));
                            }
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                metrics.counter("engine.tasks").add(tasks.len() as u64);
                pool.run_scoped(tasks, metrics);
                outputs
                    .into_iter()
                    .map(|slot| slot.expect("every shard writes its whole output slice"))
                    .collect()
            }
        }
    }

    /// Like [`ExecutionEngine::map`], but converts worker panics into
    /// [`EngineError`] instead of unwinding the calling thread.
    pub fn try_map<T, U, F>(&self, items: Vec<T>, f: F) -> Result<Vec<U>, EngineError>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.try_map_with_hook(items, f, &NoFaults)
    }

    /// Like [`ExecutionEngine::map`], but consults `hook` for a
    /// [`WorkerOrder`] first and acts it out: the targeted shard suffers the
    /// ordered injected panics (real unwinds, restarted in place up to
    /// [`MAX_WORKER_RESTARTS`] times) and latency before producing its
    /// outputs.
    ///
    /// # Panics
    /// If the order is fatal (panics beyond the restart budget) or `f`
    /// itself panics.
    pub fn map_with_hook<T, U, F>(&self, items: Vec<T>, f: F, hook: &dyn FaultHook) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        match self.try_map_with_hook(items, f, hook) {
            Ok(out) => out,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible, fault-aware map: draws one [`WorkerOrder`] from `hook`
    /// (exactly one per call, so injected counts are independent of worker
    /// count), acts it out on the targeted shard, and converts any
    /// unrecovered worker panic — injected-fatal or genuine — into
    /// [`EngineError`].
    ///
    /// The order's decisions and accounting both live in the hook; the
    /// engine only *performs* them, which is what keeps results and
    /// [`cdp_faults::FaultStats`] bit-identical across `Sequential` and any
    /// `Threaded` worker count for the same fault seed.
    pub fn try_map_with_hook<T, U, F>(
        &self,
        items: Vec<T>,
        f: F,
        hook: &dyn FaultHook,
    ) -> Result<Vec<U>, EngineError>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.try_map_with_hook_observed(items, f, hook, &Metrics::disabled())
    }

    /// [`ExecutionEngine::try_map_with_hook`] with engine metrics recorded
    /// into `metrics`. On top of the `map_observed` counters this tracks
    /// `engine.worker_restarts` — the number of in-place restarts actually
    /// performed for the drawn order (matching the retry accounting of
    /// [`cdp_faults::FaultStats`]).
    pub fn try_map_with_hook_observed<T, U, F>(
        &self,
        items: Vec<T>,
        f: F,
        hook: &dyn FaultHook,
        metrics: &Metrics,
    ) -> Result<Vec<U>, EngineError>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.try_map_with_hook_traced(items, f, hook, metrics, &Tracer::disabled(), None)
    }

    /// [`ExecutionEngine::try_map_with_hook_observed`] with causal spans:
    /// like [`ExecutionEngine::map_traced`], plus an `engine.restart` span
    /// under the targeted shard's `engine.task` covering the acted-out
    /// injected panics, so recoveries are visible in the trace tree.
    pub fn try_map_with_hook_traced<T, U, F>(
        &self,
        items: Vec<T>,
        f: F,
        hook: &dyn FaultHook,
        metrics: &Metrics,
        tracer: &Tracer,
        parent: Option<SpanContext>,
    ) -> Result<Vec<U>, EngineError>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let map_span = tracer.child_of("engine.map", parent);
        let map_ctx = map_span.context();
        let _map_span_secs = metrics.span("engine.map_secs");
        metrics.counter("engine.map_calls").inc();
        let order = hook.next_worker_order();
        if order.panics > 0 {
            install_quiet_panic_hook();
            metrics
                .counter("engine.worker_restarts")
                .add(u64::from(order.panics.min(MAX_WORKER_RESTARTS)));
            metrics.event(
                "engine.worker_panic",
                format!("injected panics: {}", order.panics),
            );
        }
        match *self {
            ExecutionEngine::Sequential => {
                metrics.counter("engine.tasks").add(1);
                let task_span = tracer.child_of("engine.task", map_ctx);
                if order.panics > 0 {
                    let _restart_span = tracer.child_of("engine.restart", task_span.context());
                    act_injected_panics(order.panics)?;
                }
                if !order.delay.is_zero() {
                    std::thread::sleep(order.delay);
                }
                panic::catch_unwind(AssertUnwindSafe(|| items.into_iter().map(f).collect()))
                    .map_err(EngineError::from_payload)
            }
            ExecutionEngine::Threaded { workers } => self.threaded_map_with_order(
                items,
                f,
                workers.max(1),
                order,
                metrics,
                tracer,
                map_ctx,
            ),
        }
    }

    /// Threaded map body shared by the fault-aware entry points: one shard
    /// (selected by `order.target`) acts out the injected panics/latency,
    /// all shards run under `catch_unwind` so both injected-fatal and
    /// genuine panics surface as [`EngineError`].
    #[allow(clippy::too_many_arguments)]
    fn threaded_map_with_order<T, U, F>(
        &self,
        items: Vec<T>,
        f: F,
        workers: usize,
        order: WorkerOrder,
        metrics: &Metrics,
        tracer: &Tracer,
        map_ctx: Option<SpanContext>,
    ) -> Result<Vec<U>, EngineError>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            // No shard exists to act the order on; a fatal order still
            // cannot lose work, so an empty map simply succeeds.
            return if order.panics > MAX_WORKER_RESTARTS {
                act_injected_panics(order.panics).map(|()| Vec::new())
            } else {
                Ok(Vec::new())
            };
        }
        let pool = WorkerPool::global(workers);
        let shard_len = n.div_ceil((workers * SHARDS_PER_WORKER).min(n));

        let mut shards: Vec<Vec<T>> = Vec::with_capacity(n.div_ceil(shard_len));
        let mut iter = items.into_iter();
        loop {
            let shard: Vec<T> = iter.by_ref().take(shard_len).collect();
            if shard.is_empty() {
                break;
            }
            shards.push(shard);
        }
        let shard_count = shards.len();
        let target = (order.target % shard_count as u64) as usize;

        let mut outputs: Vec<Option<U>> = Vec::with_capacity(n);
        outputs.resize_with(n, || None);
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = outputs
            .chunks_mut(shard_len)
            .zip(shards)
            .enumerate()
            .map(|(idx, (out, shard))| {
                let ordered_panics = if idx == target { order.panics } else { 0 };
                let delay = if idx == target {
                    order.delay
                } else {
                    std::time::Duration::ZERO
                };
                Box::new(move || {
                    let task_span = tracer.child_of("engine.task", map_ctx);
                    if ordered_panics > 0 {
                        let _restart_span = tracer.child_of("engine.restart", task_span.context());
                        if let Err(_fatal) = act_injected_panics(ordered_panics) {
                            // Propagate the fatal injected panic through the
                            // pool's barrier so the submitting thread sees it.
                            panic::panic_any(InjectedWorkerPanic);
                        }
                    }
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    for (slot, item) in out.iter_mut().zip(shard) {
                        *slot = Some(f(item));
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        metrics.counter("engine.tasks").add(tasks.len() as u64);
        let run = panic::catch_unwind(AssertUnwindSafe(|| pool.run_scoped(tasks, metrics)));
        match run {
            Ok(()) => Ok(outputs
                .into_iter()
                .map(|slot| slot.expect("every shard writes its whole output slice"))
                .collect()),
            Err(payload) => Err(EngineError::from_payload(payload)),
        }
    }

    /// Maps then folds the outputs in input order (a deterministic reduce —
    /// important for floating-point reproducibility across engines).
    pub fn map_reduce<T, U, A, F, G>(&self, items: Vec<T>, f: F, init: A, g: G) -> A
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
        G: FnMut(A, U) -> A,
    {
        self.map(items, f).into_iter().fold(init, g)
    }
}

/// Reduces `parts` pairwise — adjacent pairs first, then pairs of pairs —
/// until one value remains.
///
/// The reduction tree's shape depends only on `parts.len()`, never on
/// worker count or timing, so non-associative (floating-point) combines
/// produce bit-identical results no matter which engine computed the parts.
/// Returns `None` for an empty input.
pub fn tree_reduce<U>(mut parts: Vec<U>, mut g: impl FnMut(U, U) -> U) -> Option<U> {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut iter = parts.into_iter();
        while let Some(a) = iter.next() {
            next.push(match iter.next() {
                Some(b) => g(a, b),
                None => a,
            });
        }
        parts = next;
    }
    parts.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sequential_and_threaded_agree() {
        let items: Vec<u64> = (0..100).collect();
        let seq = ExecutionEngine::Sequential.map(items.clone(), |x| x * x);
        let par = ExecutionEngine::Threaded { workers: 4 }.map(items, |x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn order_is_preserved_under_imbalance() {
        // Make early items slow so late items finish first.
        let items: Vec<u64> = (0..32).collect();
        let out = ExecutionEngine::Threaded { workers: 8 }.map(items, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = ExecutionEngine::Threaded { workers: 4 }.map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = ExecutionEngine::Threaded { workers: 64 }.map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn map_reduce_is_deterministic() {
        let items: Vec<f64> = (0..1000).map(|i| f64::from(i) * 0.1).collect();
        let a = ExecutionEngine::Sequential.map_reduce(
            items.clone(),
            |x| x * 1.5,
            0.0,
            |acc, x| acc + x,
        );
        let b = ExecutionEngine::Threaded { workers: 7 }.map_reduce(
            items,
            |x| x * 1.5,
            0.0,
            |acc, x| acc + x,
        );
        // Fold order is identical (input order), so sums match exactly.
        assert_eq!(a, b);
    }

    #[test]
    fn moves_non_copy_items() {
        let items = vec![String::from("a"), String::from("bb")];
        let out = ExecutionEngine::Threaded { workers: 2 }.map(items, |s| s.len());
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn names() {
        assert_eq!(ExecutionEngine::Sequential.name(), "sequential");
        assert_eq!(
            ExecutionEngine::Threaded { workers: 3 }.name(),
            "threaded×3"
        );
        assert_eq!(ExecutionEngine::Sequential.workers(), 1);
        assert_eq!(ExecutionEngine::Threaded { workers: 3 }.workers(), 3);
    }

    #[test]
    fn pool_threads_are_reused_across_calls() {
        // A spawn-per-call engine would mint fresh thread ids on every map;
        // the persistent pool serves every call from the same `workers`
        // threads.
        let engine = ExecutionEngine::Threaded { workers: 3 };
        let mut ids = HashSet::new();
        for _ in 0..8 {
            for id in engine.map(vec![(); 64], |()| std::thread::current().id()) {
                ids.insert(id);
            }
        }
        assert!(ids.len() <= 3, "saw {} distinct worker threads", ids.len());
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let result = panic::catch_unwind(|| {
            ExecutionEngine::Threaded { workers: 2 }.map(vec![1u32, 2, 3, 4], |x| {
                if x == 3 {
                    panic!("boom {x}");
                }
                x
            })
        });
        let payload = result.expect_err("map must propagate the worker panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic! with a formatted message carries a String");
        assert_eq!(msg, "boom 3");
    }

    #[test]
    fn pool_survives_worker_panics() {
        let engine = ExecutionEngine::Threaded { workers: 2 };
        for round in 0..3 {
            let result = panic::catch_unwind(|| {
                engine.map((0..64u64).collect(), |x| {
                    if x % 16 == 7 {
                        panic!("round {round}");
                    }
                    x
                })
            });
            assert!(result.is_err());
            // The same pool keeps serving normal work afterwards.
            let ok = engine.map((0..64u64).collect(), |x| x + 1);
            assert_eq!(ok, (1..=64).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn try_map_converts_genuine_panics_to_errors() {
        let err = ExecutionEngine::Threaded { workers: 2 }
            .try_map((0..16u32).collect(), |x| {
                if x == 9 {
                    panic!("kaput {x}");
                }
                x
            })
            .expect_err("panicking task must error");
        assert_eq!(err, EngineError::WorkerPanic("kaput 9".to_owned()));

        let ok = ExecutionEngine::Sequential.try_map(vec![1, 2, 3], |x| x * 2);
        assert_eq!(ok, Ok(vec![2, 4, 6]));
    }

    /// Hook ordering a fixed number of injected panics at a fixed target.
    #[derive(Debug)]
    struct PanicOrder(u32);

    impl cdp_faults::FaultHook for PanicOrder {
        fn next_worker_order(&self) -> WorkerOrder {
            WorkerOrder {
                panics: self.0,
                target: 5,
                delay: std::time::Duration::ZERO,
            }
        }
    }

    #[test]
    fn injected_panics_are_restarted_without_changing_results() {
        let items: Vec<u64> = (0..200).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::Threaded { workers: 2 },
            ExecutionEngine::Threaded { workers: 5 },
        ] {
            let out = engine
                .try_map_with_hook(items.clone(), |x| x * 3, &PanicOrder(MAX_WORKER_RESTARTS))
                .expect("restartable order must recover");
            assert_eq!(out, expected, "engine {}", engine.name());
        }
    }

    #[test]
    fn fatal_injected_order_is_an_error_not_a_process_panic() {
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::Threaded { workers: 3 },
        ] {
            let err = engine
                .try_map_with_hook(
                    (0..64u64).collect(),
                    |x| x,
                    &PanicOrder(MAX_WORKER_RESTARTS + 1),
                )
                .expect_err("order beyond the restart budget is fatal");
            assert!(matches!(err, EngineError::WorkerPanic(_)));
            // The pool keeps serving afterwards.
            assert_eq!(engine.map(vec![1, 2], |x| x + 1), vec![2, 3]);
        }
    }

    #[test]
    fn map_with_hook_noop_hook_matches_map() {
        let items: Vec<u64> = (0..50).collect();
        let plain = ExecutionEngine::Threaded { workers: 4 }.map(items.clone(), |x| x + 7);
        let hooked = ExecutionEngine::Threaded { workers: 4 }.map_with_hook(
            items,
            |x| x + 7,
            &cdp_faults::NoFaults,
        );
        assert_eq!(plain, hooked);
    }

    /// A panic payload whose `Drop` panics — the worst case for the pool's
    /// panic-slot bookkeeping: dropping a second payload while holding the
    /// slot lock would poison it *and* kill the worker before the barrier
    /// decrement, deadlocking `run_scoped` forever.
    struct BoomOnDrop;

    impl Drop for BoomOnDrop {
        fn drop(&mut self) {
            if !std::thread::panicking() {
                panic!("payload drop bomb");
            }
        }
    }

    #[test]
    fn panic_inside_barrier_critical_section_does_not_poison_the_pool() {
        install_quiet_panic_hook();
        let engine = ExecutionEngine::Threaded { workers: 4 };
        // Every shard panics with a drop-bomb payload: the first payload is
        // stashed and re-raised here, all the extra ones detonate inside the
        // workers' critical-section cleanup. Pre-fix this deadlocked (extra
        // payload dropped under the panic-slot lock killed the worker before
        // its barrier decrement); post-fix the barrier completes and the
        // first payload surfaces.
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            engine.map((0..64u64).collect(), |_| -> u64 {
                panic::panic_any(BoomOnDrop);
            })
        }));
        let payload = result.expect_err("map must re-raise the first panic");
        assert!(payload.downcast_ref::<BoomOnDrop>().is_some());
        // Never drop the re-raised bomb on this thread.
        std::mem::forget(payload);

        // The same pool (and its locks) keeps serving normal work.
        for _ in 0..3 {
            let ok = engine.map((0..64u64).collect(), |x| x + 1);
            assert_eq!(ok, (1..=64).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn observed_map_records_engine_metrics() {
        let metrics = Metrics::collecting();
        let engine = ExecutionEngine::Threaded { workers: 2 };
        let out = engine.map_observed((0..32u64).collect(), |x| x * 2, &metrics);
        assert_eq!(out.len(), 32);
        let ok = engine.try_map_with_hook_observed(
            (0..32u64).collect(),
            |x| x,
            &PanicOrder(2),
            &metrics,
        );
        assert!(ok.is_ok());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("engine.map_calls"), 2);
        assert!(snap.counter("engine.tasks") >= 2);
        assert_eq!(snap.counter("engine.worker_restarts"), 2);
        let waits = snap.histogram("engine.barrier_wait_secs");
        assert!(waits.is_some_and(|h| h.count == 2));
        let spans = snap.histogram("engine.map_secs");
        assert!(spans.is_some_and(|h| h.count == 2));
    }

    #[test]
    fn traced_map_builds_cross_thread_span_tree() {
        let tracer = Tracer::collecting();
        let root = tracer.root("caller");
        let out = ExecutionEngine::Threaded { workers: 2 }.map_traced(
            (0..64u64).collect(),
            |x| x + 1,
            &Metrics::disabled(),
            &tracer,
            root.context(),
        );
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
        root.finish();

        let snap = tracer.snapshot();
        snap.validate().unwrap();
        assert_eq!(snap.span_count("caller"), 1);
        assert_eq!(snap.span_count("engine.map"), 1);
        assert!(snap.span_count("engine.task") >= 2);
        for task in snap.spans.iter().filter(|s| s.name == "engine.task") {
            assert_eq!(snap.parent_name(task), Some("engine.map"));
        }
        // Tasks executed on pool threads, the map call on this one: the
        // single trace tree spans threads.
        assert!(snap.crosses_threads());
    }

    #[test]
    fn injected_restarts_appear_as_restart_spans() {
        let tracer = Tracer::collecting();
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::Threaded { workers: 2 },
        ] {
            let out = engine
                .try_map_with_hook_traced(
                    (0..32u64).collect(),
                    |x| x,
                    &PanicOrder(2),
                    &Metrics::disabled(),
                    &tracer,
                    None,
                )
                .expect("restartable order must recover");
            assert_eq!(out.len(), 32);
        }
        let snap = tracer.snapshot();
        snap.validate().unwrap();
        assert_eq!(snap.span_count("engine.restart"), 2);
        for restart in snap.spans.iter().filter(|s| s.name == "engine.restart") {
            assert_eq!(snap.parent_name(restart), Some("engine.task"));
        }
    }

    #[test]
    fn disabled_tracer_map_matches_plain_map() {
        let items: Vec<u64> = (0..100).collect();
        let plain = ExecutionEngine::Threaded { workers: 3 }.map(items.clone(), |x| x * x);
        let traced = ExecutionEngine::Threaded { workers: 3 }.map_traced(
            items,
            |x| x * x,
            &Metrics::disabled(),
            &Tracer::disabled(),
            None,
        );
        assert_eq!(plain, traced);
    }

    #[test]
    fn tree_reduce_is_fixed_shape() {
        // ((0+1)+(2+3)) + (4) for 5 parts — verify against the hand-built tree.
        let parts = vec![0.1f64, 0.2, 0.3, 0.4, 0.5];
        let reduced = tree_reduce(parts, |a, b| a + b).unwrap();
        let expected: f64 = ((0.1 + 0.2) + (0.3 + 0.4)) + 0.5;
        assert_eq!(reduced.to_bits(), expected.to_bits());
        assert_eq!(tree_reduce(Vec::<f64>::new(), |a, b| a + b), None);
        assert_eq!(tree_reduce(vec![7], |a, b| a + b), Some(7));
    }
}
