//! The execution engine substrate.
//!
//! The paper's prototype delegates batch processing (proactive training) and
//! stream processing (online learning, query answering) to Apache Spark
//! (§4.5: "any data processing platform capable of processing data both in
//! batch mode and streaming mode is a suitable execution engine"). This
//! crate is that substrate at laptop scale: an [`ExecutionEngine`] executes
//! chunk-level data-parallel operations either sequentially or on a
//! **persistent worker pool** — threads are created once per worker count
//! (process-wide) and reused across calls, fed over a crossbeam channel.
//!
//! Scheduling is **work-stealing** over contiguous unit ranges: the input
//! index space is cut into a few units per participant, each participant
//! owns a range queue (packed lo/hi in one atomic word), pops its own units
//! from the front and, when its range runs dry, steals units from the *back*
//! of a sibling's queue. Completion is counted, not barriered: every claimed
//! unit bumps a shared counter and the last one wakes the submitting thread.
//! On the untraced hot path the submitting thread itself is participant 0,
//! so a map whose units all fit one participant degenerates to a plain loop
//! with no cross-thread hand-off at all; helper workers are enlisted only up
//! to the host's spare parallelism. With tracing enabled every unit runs on
//! pool threads instead, so the span tree reliably crosses threads.
//!
//! Zero-copy variants ([`ExecutionEngine::map_slice`],
//! [`ExecutionEngine::map_parts`], [`ExecutionEngine::map_indexed`] and
//! their traced/hooked tiers) borrow the input instead of taking `Vec<T>` by
//! value, so hot-path callers shard by index range rather than copying items
//! into per-shard vectors.
//!
//! Determinism contract: every map variant writes each output into its own
//! index slot, so input order is preserved no matter which participant ran
//! which unit; [`ExecutionEngine::map_reduce`] folds in input order, and
//! [`tree_reduce`] combines partial results in a fixed shape that depends
//! only on the number of parts — never on worker count or scheduling — so
//! floating-point results are bit-identical across engines. Scheduling
//! observables that *are* timing-dependent (`engine.steal`,
//! `engine.barrier_wait_secs`) are recorded as histograms, never as
//! deterministic counters.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, OnceLock, PoisonError};

use cdp_faults::{FaultHook, InjectedWorkerPanic, NoFaults, WorkerOrder, MAX_WORKER_RESTARTS};
use cdp_obs::{Metrics, SpanContext, Tracer};
use crossbeam::channel::{self, Sender};

/// Locks `mutex`, recovering from poisoning.
///
/// Every engine mutex guards simple scalar state (a registry map, a done
/// flag, a panic slot) that stays consistent even when the holder unwinds
/// mid-critical-section, so poisoning carries no information here.
/// Propagating it instead (the old `.expect(...)`) crashed the deployment
/// thread on the very fault PR 2's worker-restart machinery exists to
/// absorb.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Contiguous units handed out per participant in one map call: a few per
/// participant so a straggling unit re-balances onto idle participants via
/// stealing without giving up contiguity.
const UNITS_PER_PARTICIPANT: usize = 4;

/// An erased unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads fed over a crossbeam channel.
///
/// Pools are process-global, keyed by worker count: the first
/// `Threaded { workers: w }` call spawns the `w` threads, every later call
/// with the same count reuses them (they block on the channel when idle).
struct WorkerPool {
    sender: Sender<Job>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let (sender, receiver) = channel::unbounded::<Job>();
        for i in 0..workers {
            let receiver = receiver.clone();
            std::thread::Builder::new()
                .name(format!("cdp-engine-{i}"))
                .spawn(move || {
                    // Helper jobs catch unit panics internally, so a
                    // panicking map never kills its worker; the loop only
                    // ends if the sender side is dropped (process exit).
                    while let Ok(job) = receiver.recv() {
                        job();
                    }
                })
                .expect("spawn engine worker");
        }
        Self { sender }
    }

    /// The process-wide pool for `workers` threads (created on first use).
    fn global(workers: usize) -> Arc<WorkerPool> {
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
        let registry = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut registry = lock_ignore_poison(registry);
        Arc::clone(
            registry
                .entry(workers)
                .or_insert_with(|| Arc::new(WorkerPool::new(workers))),
        )
    }
}

/// How many pool helpers the host can keep busy next to the submitting
/// thread. On a 1-core host this is 1, so an 8-worker engine enlists a
/// single helper instead of drowning the core in idle contenders — the fix
/// for the old engine's 0.45× cliff at ×8.
fn helper_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .saturating_sub(1)
            .max(1)
    })
}

/// One participant's contiguous range of pending units, packed `hi << 32 |
/// lo` into a single atomic word. The owner pops from the front (`lo`),
/// thieves steal from the back (`hi - 1`); both advance by CAS so every unit
/// index in `[lo, hi)` is claimed exactly once.
struct RangeQueue {
    state: AtomicU64,
}

fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(hi) << 32) | u64::from(lo)
}

fn unpack(state: u64) -> (u32, u32) {
    (state as u32, (state >> 32) as u32)
}

impl RangeQueue {
    fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi);
        Self {
            state: AtomicU64::new(pack(lo, hi)),
        }
    }

    /// Owner side: claims the front unit of the range, if any.
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            match self.state.compare_exchange_weak(
                cur,
                pack(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Thief side: claims the back unit of the range, if any.
    fn steal_back(&self) -> Option<usize> {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            match self.state.compare_exchange_weak(
                cur,
                pack(lo, hi - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((hi - 1) as usize),
                Err(now) => cur = now,
            }
        }
    }
}

/// Shared state for one work-stealing map: the range queues, completion
/// count, panic slot, and the close/guard handshake that lets pool jobs
/// safely borrow from the submitting thread's stack.
struct Control {
    /// One range queue per participant, covering `[0, units)` disjointly.
    ranges: Vec<RangeQueue>,
    units: usize,
    completed: AtomicUsize,
    /// Set on the first unit panic; remaining units drain without running
    /// (fail-fast), so the caller wakes promptly with the first payload.
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    steals: AtomicU64,
    /// Scope-close handshake: the caller sets `closed` only after every
    /// unit completed, then spins until `guards` drains to zero. A pool job
    /// increments `guards`, *then* checks `closed`: either it sees the map
    /// still open (and the caller's spin keeps the borrowed stack alive
    /// until the job's decrement), or it sees `closed` and never touches
    /// the borrow. All four accesses are SeqCst, so the Dekker-style pair
    /// (store closed / load guards vs. add guards / load closed) cannot
    /// both miss each other.
    closed: AtomicBool,
    guards: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Control {
    fn new(units: usize, queues: usize) -> Self {
        debug_assert!(units >= 1 && queues >= 1);
        debug_assert!(units <= u32::MAX as usize);
        let ranges = (0..queues)
            .map(|q| {
                let lo = q * units / queues;
                let hi = (q + 1) * units / queues;
                RangeQueue::new(lo as u32, hi as u32)
            })
            .collect();
        Self {
            ranges,
            units,
            completed: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            steals: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            guards: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }
}

/// One participant's work loop: pop own units from the front, steal from
/// siblings when dry, run each claimed unit under `catch_unwind`, count
/// completions, and wake the submitting thread when the last unit lands.
///
/// Every claimed unit is counted as completed even when it panics or is
/// drained while poisoned — the completion count is the only thing the
/// caller waits on, so it must always reach `units`.
fn participate(ctrl: &Control, me: usize, run_unit: &(dyn Fn(usize) + Sync)) {
    let queues = ctrl.ranges.len();
    loop {
        let unit = ctrl.ranges[me].pop_front().or_else(|| {
            (1..queues).find_map(|k| {
                let victim = (me + k) % queues;
                let stolen = ctrl.ranges[victim].steal_back();
                if stolen.is_some() {
                    ctrl.steals.fetch_add(1, Ordering::Relaxed);
                }
                stolen
            })
        });
        let Some(unit) = unit else { break };
        if !ctrl.poisoned.load(Ordering::SeqCst) {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| run_unit(unit))) {
                ctrl.poisoned.store(true, Ordering::SeqCst);
                // Keep the first payload; any later one is dropped *outside*
                // the slot lock and behind its own catch_unwind: a payload
                // whose Drop panics while the lock is held would kill this
                // participant before the completion count below and hang the
                // caller forever.
                let extra = {
                    let mut slot = lock_ignore_poison(&ctrl.panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                        None
                    } else {
                        Some(payload)
                    }
                };
                if let Some(extra) = extra {
                    let _ = panic::catch_unwind(AssertUnwindSafe(move || drop(extra)));
                }
            }
        }
        if ctrl.completed.fetch_add(1, Ordering::SeqCst) + 1 == ctrl.units {
            let mut done = lock_ignore_poison(&ctrl.done);
            *done = true;
            ctrl.done_cv.notify_all();
        }
    }
}

/// Raw-pointer window over the output `Vec<Option<U>>`.
///
/// SAFETY contract: each index is written by exactly one participant — the
/// one that claimed the covering unit via a `RangeQueue` CAS — and units
/// cover disjoint index ranges, so no slot is ever written concurrently.
/// The submitting thread only reads the slots after the completion count
/// reached `units` (a SeqCst handshake through `Control::done`).
struct SharedSlots<U> {
    ptr: *mut Option<U>,
}

unsafe impl<U: Send> Send for SharedSlots<U> {}
unsafe impl<U: Send> Sync for SharedSlots<U> {}

impl<U> SharedSlots<U> {
    /// Writes slot `i`. Caller must hold the exclusive unit claim covering
    /// index `i` (see the type-level SAFETY contract).
    unsafe fn set(&self, i: usize, value: U) {
        *self.ptr.add(i) = Some(value);
    }
}

/// Raw-pointer window over the input `Vec<Option<T>>` of an owned map: each
/// participant takes exactly the items of its claimed units, so every slot
/// is taken at most once and never concurrently (same claim discipline as
/// [`SharedSlots`]).
struct SharedTake<T> {
    ptr: *mut Option<T>,
}

unsafe impl<T: Send> Send for SharedTake<T> {}
unsafe impl<T: Send> Sync for SharedTake<T> {}

impl<T> SharedTake<T> {
    /// Moves item `i` out. Caller must hold the exclusive unit claim
    /// covering index `i`.
    unsafe fn take(&self, i: usize) -> T {
        (*self.ptr.add(i))
            .take()
            .expect("each input slot is taken exactly once")
    }
}

/// A worker failure the engine could not recover from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A worker panicked and (for injected panics) exhausted its restart
    /// budget; carries the panic message.
    WorkerPanic(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanic(msg) => write!(f, "worker panic: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    fn from_payload(payload: Box<dyn Any + Send>) -> Self {
        if payload.downcast_ref::<InjectedWorkerPanic>().is_some() {
            EngineError::WorkerPanic("injected worker panic exhausted restarts".to_owned())
        } else if let Some(msg) = payload.downcast_ref::<String>() {
            EngineError::WorkerPanic(msg.clone())
        } else if let Some(msg) = payload.downcast_ref::<&str>() {
            EngineError::WorkerPanic((*msg).to_owned())
        } else {
            EngineError::WorkerPanic("non-string panic payload".to_owned())
        }
    }
}

/// Installs (once, process-wide) a panic hook that silences injected worker
/// panics — they are part of normal fault-injection operation and would
/// otherwise spam stderr with backtrace headers — while forwarding every
/// other panic to the previously installed hook.
fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<InjectedWorkerPanic>()
                .is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Physically acts out the retryable part of a worker-fault order: each
/// injected panic is a *real* `panic_any` unwind caught right here, exactly
/// what a supervisor restarting a crashed worker observes. Returns `Err`
/// when the order exceeds the restart budget (the fatal case).
///
/// Injected panics always fire at unit entry — before any input item has
/// been consumed — so a restart re-runs the unit from scratch with no items
/// lost; this is what keeps results identical to the fault-free run.
fn act_injected_panics(panics: u32) -> Result<(), EngineError> {
    for _ in 0..panics.min(MAX_WORKER_RESTARTS) {
        let unwound = panic::catch_unwind(|| panic::panic_any(InjectedWorkerPanic));
        debug_assert!(unwound.is_err());
    }
    if panics > MAX_WORKER_RESTARTS {
        return Err(EngineError::WorkerPanic(
            "injected worker panic exhausted restarts".to_owned(),
        ));
    }
    Ok(())
}

/// Runs the work-stealing loop for `units` units: enlists up to `workers`
/// pool helpers (capped by the host's spare parallelism on the untraced
/// path, where the submitting thread is participant 0), waits for the
/// completion count, then closes the scope so no pool job can still touch
/// the caller's stack. Returns the steal count and the first panic payload,
/// if any unit panicked.
fn run_stealing(
    workers: usize,
    units: usize,
    run_unit: &(dyn Fn(usize) + Sync),
    metrics: &Metrics,
    tracer: &Tracer,
) -> (u64, Option<Box<dyn Any + Send>>) {
    // With tracing enabled, hand every unit to pool threads so the span
    // tree reliably crosses threads (the observability contract the trace
    // tests pin down). Untraced — the perf path — the caller participates,
    // so small maps run inline and helpers only absorb overflow.
    let caller_participates = !tracer.is_enabled();
    let helpers = if caller_participates {
        workers.min(units.saturating_sub(1)).min(helper_cap())
    } else {
        workers.min(units).max(1)
    };
    let queues = helpers + usize::from(caller_participates);
    let ctrl = Arc::new(Control::new(units, queues));

    if helpers > 0 {
        let pool = WorkerPool::global(workers);
        // SAFETY: the transmute only erases the lifetime of the borrow; the
        // fat pointer (data + vtable) is unchanged. The close/guard
        // handshake below guarantees no pool job dereferences it after this
        // function returns: jobs increment `guards` before checking
        // `closed`, and this function sets `closed` (after all units
        // completed) and then spins until `guards` is zero before
        // returning, so any job still inside `participate` keeps the
        // caller's stack pinned here.
        let run_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(run_unit) };
        let first_helper_queue = usize::from(caller_participates);
        for h in 0..helpers {
            let ctrl = Arc::clone(&ctrl);
            let me = first_helper_queue + h;
            let job: Job = Box::new(move || {
                ctrl.guards.fetch_add(1, Ordering::SeqCst);
                if !ctrl.closed.load(Ordering::SeqCst) {
                    participate(&ctrl, me, run_static);
                }
                ctrl.guards.fetch_sub(1, Ordering::SeqCst);
            });
            pool.sender
                .send(job)
                .expect("engine workers never disconnect");
        }
    }
    if caller_participates {
        participate(&ctrl, 0, run_unit);
    }
    // The old barrier is gone; this span now measures the caller's residual
    // completion wait. The name is kept for metric-schema continuity.
    let wait_span = metrics.span("engine.barrier_wait_secs");
    {
        let mut done = lock_ignore_poison(&ctrl.done);
        while !*done {
            done = ctrl
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    wait_span.finish();
    ctrl.closed.store(true, Ordering::SeqCst);
    while ctrl.guards.load(Ordering::SeqCst) > 0 {
        std::thread::yield_now();
    }
    let payload = lock_ignore_poison(&ctrl.panic).take();
    (ctrl.steals.load(Ordering::Relaxed), payload)
}

/// Threaded body shared by every map variant: cuts `[0, n)` into contiguous
/// units, runs `exec(i)` for every index through the stealing scheduler
/// (with one `engine.task` span per unit and the fault order, if any, acted
/// out at its target unit's entry), and collects outputs in input order.
#[allow(clippy::too_many_arguments)]
fn threaded_exec<U, E>(
    workers: usize,
    n: usize,
    exec: E,
    order: Option<&WorkerOrder>,
    metrics: &Metrics,
    tracer: &Tracer,
    map_ctx: Option<SpanContext>,
) -> Result<Vec<U>, Box<dyn Any + Send>>
where
    U: Send,
    E: Fn(usize) -> U + Sync,
{
    debug_assert!(n > 0);
    let workers = workers.max(1);
    let max_units = ((workers + 1) * UNITS_PER_PARTICIPANT).min(n);
    let unit_len = n.div_ceil(max_units);
    let units = n.div_ceil(unit_len);
    metrics.counter("engine.tasks").add(units as u64);
    metrics
        .histogram("engine.queue_depth")
        .observe(units as f64);
    let target = order.map(|o| (o.target % units as u64) as usize);

    let mut outputs: Vec<Option<U>> = Vec::with_capacity(n);
    outputs.resize_with(n, || None);
    let slots = SharedSlots {
        ptr: outputs.as_mut_ptr(),
    };

    let exec = &exec;
    let run_unit = move |unit: usize| {
        let task_span = tracer.child_of("engine.task", map_ctx);
        if Some(unit) == target {
            let order = order.expect("target exists only with an order");
            if order.panics > 0 {
                let _restart_span = tracer.child_of("engine.restart", task_span.context());
                if let Err(_fatal) = act_injected_panics(order.panics) {
                    // Propagate the fatal injected panic through the
                    // participant's catch_unwind so the caller sees it.
                    panic::panic_any(InjectedWorkerPanic);
                }
            }
            if !order.delay.is_zero() {
                std::thread::sleep(order.delay);
            }
        }
        let lo = unit * unit_len;
        let hi = n.min(lo + unit_len);
        for i in lo..hi {
            // SAFETY: unit `unit` was claimed exactly once via a RangeQueue
            // CAS, and units cover disjoint index ranges — see SharedSlots.
            unsafe { slots.set(i, exec(i)) };
        }
    };
    let (steals, payload) = run_stealing(workers, units, &run_unit, metrics, tracer);
    metrics.histogram("engine.steal").observe(steals as f64);
    match payload {
        None => Ok(outputs
            .into_iter()
            .map(|slot| slot.expect("every claimed unit writes its whole index range"))
            .collect()),
        Some(payload) => Err(payload),
    }
}

/// Records the empty-map observations so per-call metric invariants
/// (`queue_depth.count == steal.count == map_calls` on threaded engines)
/// hold even for maps with nothing to do.
fn observe_empty_threaded(metrics: &Metrics) {
    metrics.histogram("engine.queue_depth").observe(0.0);
    metrics.histogram("engine.steal").observe(0.0);
}

/// A chunk-parallel execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionEngine {
    /// Process items one by one on the calling thread.
    #[default]
    Sequential,
    /// Process items on a persistent pool of `workers` OS threads.
    Threaded {
        /// Number of worker threads (≥ 1).
        workers: usize,
    },
}

impl ExecutionEngine {
    /// A threaded engine sized to the machine (minimum 2 workers).
    pub fn threaded_auto() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .max(2);
        ExecutionEngine::Threaded { workers }
    }

    /// Engine display name.
    pub fn name(&self) -> String {
        match self {
            ExecutionEngine::Sequential => "sequential".to_owned(),
            ExecutionEngine::Threaded { workers } => format!("threaded×{workers}"),
        }
    }

    /// Worker-thread count (1 for the sequential engine).
    pub fn workers(&self) -> usize {
        match *self {
            ExecutionEngine::Sequential => 1,
            ExecutionEngine::Threaded { workers } => workers.max(1),
        }
    }

    /// Applies `f` to every item, returning outputs in input order.
    ///
    /// `f` must be `Sync` because participants share it. Items are cut into
    /// contiguous units (a few per participant) scheduled by work-stealing,
    /// so per-item cost imbalance is load-balanced; each output is written
    /// into its own index slot, so results need no locking and arrive in
    /// input order.
    ///
    /// # Panics
    /// If `f` panics on any item, the first participant's payload is
    /// re-raised on the calling thread once the map has drained.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.map_observed(items, f, &Metrics::disabled())
    }

    /// [`ExecutionEngine::map`] with engine metrics recorded into
    /// `metrics`: `engine.map_calls`, `engine.tasks` (units scheduled),
    /// `engine.map_secs`, and (threaded) `engine.barrier_wait_secs` (the
    /// caller's completion wait), `engine.queue_depth`, `engine.steal`.
    pub fn map_observed<T, U, F>(&self, items: Vec<T>, f: F, metrics: &Metrics) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.map_traced(items, f, metrics, &Tracer::disabled(), None)
    }

    /// [`ExecutionEngine::map_observed`] with causal spans: opens an
    /// `engine.map` span under `parent` and one `engine.task` child per
    /// unit *on the thread executing it*, so the trace tree spans threads
    /// ([`SpanContext`] is `Copy` and crosses into pool tasks).
    pub fn map_traced<T, U, F>(
        &self,
        items: Vec<T>,
        f: F,
        metrics: &Metrics,
        tracer: &Tracer,
        parent: Option<SpanContext>,
    ) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let map_span = tracer.child_of("engine.map", parent);
        let map_ctx = map_span.context();
        let _map_span_secs = metrics.span("engine.map_secs");
        metrics.counter("engine.map_calls").inc();
        match *self {
            ExecutionEngine::Sequential => {
                metrics.counter("engine.tasks").add(1);
                let _task_span = tracer.child_of("engine.task", map_ctx);
                items.into_iter().map(f).collect()
            }
            ExecutionEngine::Threaded { workers } => {
                let n = items.len();
                if n == 0 {
                    observe_empty_threaded(metrics);
                    return Vec::new();
                }
                let mut staged: Vec<Option<T>> = items.into_iter().map(Some).collect();
                let take = SharedTake {
                    ptr: staged.as_mut_ptr(),
                };
                let f = &f;
                // SAFETY (take): each index belongs to exactly one claimed
                // unit, so each input slot is taken once, never concurrently.
                let exec = move |i: usize| f(unsafe { take.take(i) });
                match threaded_exec(workers, n, exec, None, metrics, tracer, map_ctx) {
                    Ok(out) => out,
                    Err(payload) => panic::resume_unwind(payload),
                }
            }
        }
    }

    /// Borrowing variant of [`ExecutionEngine::map`]: shares `items` across
    /// participants instead of moving them, so hot-path callers need no
    /// per-shard `to_vec` copies.
    pub fn map_slice<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.map_slice_traced(items, f, &Metrics::disabled(), &Tracer::disabled(), None)
    }

    /// [`ExecutionEngine::map_slice`] with metrics and causal spans (same
    /// scheme as [`ExecutionEngine::map_traced`]).
    pub fn map_slice_traced<T, U, F>(
        &self,
        items: &[T],
        f: F,
        metrics: &Metrics,
        tracer: &Tracer,
        parent: Option<SpanContext>,
    ) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let map_span = tracer.child_of("engine.map", parent);
        let map_ctx = map_span.context();
        let _map_span_secs = metrics.span("engine.map_secs");
        metrics.counter("engine.map_calls").inc();
        match *self {
            ExecutionEngine::Sequential => {
                metrics.counter("engine.tasks").add(1);
                let _task_span = tracer.child_of("engine.task", map_ctx);
                items.iter().map(f).collect()
            }
            ExecutionEngine::Threaded { workers } => {
                let n = items.len();
                if n == 0 {
                    observe_empty_threaded(metrics);
                    return Vec::new();
                }
                let f = &f;
                let exec = move |i: usize| f(&items[i]);
                match threaded_exec(workers, n, exec, None, metrics, tracer, map_ctx) {
                    Ok(out) => out,
                    Err(payload) => panic::resume_unwind(payload),
                }
            }
        }
    }

    /// Maps `f` over contiguous parts of `items` of length `part_len` (the
    /// last part may be shorter), returning one output per part in part
    /// order. This is the zero-copy replacement for callers that used to
    /// build `Vec<Vec<T>>` shards: part boundaries are pure index
    /// arithmetic, so the shard structure — and therefore any
    /// floating-point reduction over the outputs — is identical on every
    /// engine.
    pub fn map_parts<T, U, F>(&self, items: &[T], part_len: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&[T]) -> U + Sync,
    {
        self.map_parts_traced(
            items,
            part_len,
            f,
            &Metrics::disabled(),
            &Tracer::disabled(),
            None,
        )
    }

    /// [`ExecutionEngine::map_parts`] with metrics and causal spans.
    pub fn map_parts_traced<T, U, F>(
        &self,
        items: &[T],
        part_len: usize,
        f: F,
        metrics: &Metrics,
        tracer: &Tracer,
        parent: Option<SpanContext>,
    ) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&[T]) -> U + Sync,
    {
        assert!(part_len > 0, "part_len must be ≥ 1");
        let map_span = tracer.child_of("engine.map", parent);
        let map_ctx = map_span.context();
        let _map_span_secs = metrics.span("engine.map_secs");
        metrics.counter("engine.map_calls").inc();
        let parts = items.len().div_ceil(part_len);
        let part = |p: usize| &items[p * part_len..items.len().min((p + 1) * part_len)];
        match *self {
            ExecutionEngine::Sequential => {
                metrics.counter("engine.tasks").add(1);
                let _task_span = tracer.child_of("engine.task", map_ctx);
                (0..parts).map(|p| f(part(p))).collect()
            }
            ExecutionEngine::Threaded { workers } => {
                if parts == 0 {
                    observe_empty_threaded(metrics);
                    return Vec::new();
                }
                let f = &f;
                let exec = move |p: usize| f(part(p));
                match threaded_exec(workers, parts, exec, None, metrics, tracer, map_ctx) {
                    Ok(out) => out,
                    Err(payload) => panic::resume_unwind(payload),
                }
            }
        }
    }

    /// Maps `f` over the index space `0..n` — the fully zero-copy variant
    /// for callers whose items live in structures the engine need not know
    /// about (the fused transform+gradient pass maps over *source indices*
    /// and never materializes an input vector at all).
    pub fn map_indexed<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        match self.try_map_indexed_with_hook_traced(
            n,
            f,
            &NoFaults,
            &Metrics::disabled(),
            &Tracer::disabled(),
            None,
        ) {
            Ok(out) => out,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible, fault-aware indexed map without tracing — the serving
    /// layer's batch-scoring entry point, where queries arrive outside any
    /// deployment span tree.
    pub fn try_map_indexed_with_hook<U, F>(
        &self,
        n: usize,
        f: F,
        hook: &dyn FaultHook,
        metrics: &Metrics,
    ) -> Result<Vec<U>, EngineError>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        self.try_map_indexed_with_hook_traced(n, f, hook, metrics, &Tracer::disabled(), None)
    }

    /// Fallible, fault-aware, traced indexed map: the most general engine
    /// entry point. Draws one [`WorkerOrder`] from `hook` (exactly one per
    /// call, so injected counts are independent of worker count), acts it
    /// out at the targeted unit's entry, and converts any unrecovered
    /// worker panic — injected-fatal or genuine — into [`EngineError`].
    pub fn try_map_indexed_with_hook_traced<U, F>(
        &self,
        n: usize,
        f: F,
        hook: &dyn FaultHook,
        metrics: &Metrics,
        tracer: &Tracer,
        parent: Option<SpanContext>,
    ) -> Result<Vec<U>, EngineError>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let map_span = tracer.child_of("engine.map", parent);
        let map_ctx = map_span.context();
        let _map_span_secs = metrics.span("engine.map_secs");
        metrics.counter("engine.map_calls").inc();
        let order = hook.next_worker_order();
        record_order(&order, metrics);
        match *self {
            ExecutionEngine::Sequential => {
                metrics.counter("engine.tasks").add(1);
                let task_span = tracer.child_of("engine.task", map_ctx);
                if order.panics > 0 {
                    let _restart_span = tracer.child_of("engine.restart", task_span.context());
                    act_injected_panics(order.panics)?;
                }
                if !order.delay.is_zero() {
                    std::thread::sleep(order.delay);
                }
                panic::catch_unwind(AssertUnwindSafe(|| (0..n).map(&f).collect()))
                    .map_err(EngineError::from_payload)
            }
            ExecutionEngine::Threaded { workers } => {
                if n == 0 {
                    observe_empty_threaded(metrics);
                    return empty_map_with_order(&order);
                }
                threaded_exec(workers, n, &f, Some(&order), metrics, tracer, map_ctx)
                    .map_err(EngineError::from_payload)
            }
        }
    }

    /// Like [`ExecutionEngine::map`], but converts worker panics into
    /// [`EngineError`] instead of unwinding the calling thread.
    pub fn try_map<T, U, F>(&self, items: Vec<T>, f: F) -> Result<Vec<U>, EngineError>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.try_map_with_hook(items, f, &NoFaults)
    }

    /// Like [`ExecutionEngine::map`], but consults `hook` for a
    /// [`WorkerOrder`] first and acts it out: the targeted unit suffers the
    /// ordered injected panics (real unwinds, restarted in place up to
    /// [`MAX_WORKER_RESTARTS`] times) and latency before producing its
    /// outputs.
    ///
    /// # Panics
    /// If the order is fatal (panics beyond the restart budget) or `f`
    /// itself panics.
    pub fn map_with_hook<T, U, F>(&self, items: Vec<T>, f: F, hook: &dyn FaultHook) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        match self.try_map_with_hook(items, f, hook) {
            Ok(out) => out,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible, fault-aware map: draws one [`WorkerOrder`] from `hook`
    /// (exactly one per call, so injected counts are independent of worker
    /// count), acts it out on the targeted unit, and converts any
    /// unrecovered worker panic — injected-fatal or genuine — into
    /// [`EngineError`].
    ///
    /// The order's decisions and accounting both live in the hook; the
    /// engine only *performs* them, which is what keeps results and
    /// [`cdp_faults::FaultStats`] bit-identical across `Sequential` and any
    /// `Threaded` worker count for the same fault seed.
    pub fn try_map_with_hook<T, U, F>(
        &self,
        items: Vec<T>,
        f: F,
        hook: &dyn FaultHook,
    ) -> Result<Vec<U>, EngineError>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.try_map_with_hook_observed(items, f, hook, &Metrics::disabled())
    }

    /// [`ExecutionEngine::try_map_with_hook`] with engine metrics recorded
    /// into `metrics`. On top of the `map_observed` counters this tracks
    /// `engine.worker_restarts` — the number of in-place restarts actually
    /// performed for the drawn order (matching the retry accounting of
    /// [`cdp_faults::FaultStats`]).
    pub fn try_map_with_hook_observed<T, U, F>(
        &self,
        items: Vec<T>,
        f: F,
        hook: &dyn FaultHook,
        metrics: &Metrics,
    ) -> Result<Vec<U>, EngineError>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.try_map_with_hook_traced(items, f, hook, metrics, &Tracer::disabled(), None)
    }

    /// [`ExecutionEngine::try_map_with_hook_observed`] with causal spans:
    /// like [`ExecutionEngine::map_traced`], plus an `engine.restart` span
    /// under the targeted unit's `engine.task` covering the acted-out
    /// injected panics, so recoveries are visible in the trace tree.
    pub fn try_map_with_hook_traced<T, U, F>(
        &self,
        items: Vec<T>,
        f: F,
        hook: &dyn FaultHook,
        metrics: &Metrics,
        tracer: &Tracer,
        parent: Option<SpanContext>,
    ) -> Result<Vec<U>, EngineError>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let map_span = tracer.child_of("engine.map", parent);
        let map_ctx = map_span.context();
        let _map_span_secs = metrics.span("engine.map_secs");
        metrics.counter("engine.map_calls").inc();
        let order = hook.next_worker_order();
        record_order(&order, metrics);
        match *self {
            ExecutionEngine::Sequential => {
                metrics.counter("engine.tasks").add(1);
                let task_span = tracer.child_of("engine.task", map_ctx);
                if order.panics > 0 {
                    let _restart_span = tracer.child_of("engine.restart", task_span.context());
                    act_injected_panics(order.panics)?;
                }
                if !order.delay.is_zero() {
                    std::thread::sleep(order.delay);
                }
                panic::catch_unwind(AssertUnwindSafe(|| items.into_iter().map(f).collect()))
                    .map_err(EngineError::from_payload)
            }
            ExecutionEngine::Threaded { workers } => {
                let n = items.len();
                if n == 0 {
                    observe_empty_threaded(metrics);
                    return empty_map_with_order(&order);
                }
                let mut staged: Vec<Option<T>> = items.into_iter().map(Some).collect();
                let take = SharedTake {
                    ptr: staged.as_mut_ptr(),
                };
                let f = &f;
                // SAFETY (take): exclusive unit claims — see SharedTake.
                let exec = move |i: usize| f(unsafe { take.take(i) });
                threaded_exec(workers, n, exec, Some(&order), metrics, tracer, map_ctx)
                    .map_err(EngineError::from_payload)
            }
        }
    }

    /// Borrowing, fallible, fault-aware, traced map — the zero-copy
    /// workhorse of the re-materialization path: shares `items` across
    /// participants and otherwise behaves exactly like
    /// [`ExecutionEngine::try_map_with_hook_traced`].
    pub fn try_map_slice_with_hook_traced<T, U, F>(
        &self,
        items: &[T],
        f: F,
        hook: &dyn FaultHook,
        metrics: &Metrics,
        tracer: &Tracer,
        parent: Option<SpanContext>,
    ) -> Result<Vec<U>, EngineError>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.try_map_indexed_with_hook_traced(
            items.len(),
            |i| f(&items[i]),
            hook,
            metrics,
            tracer,
            parent,
        )
    }

    /// Maps then folds the outputs in input order (a deterministic reduce —
    /// important for floating-point reproducibility across engines).
    pub fn map_reduce<T, U, A, F, G>(&self, items: Vec<T>, f: F, init: A, g: G) -> A
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
        G: FnMut(A, U) -> A,
    {
        self.map(items, f).into_iter().fold(init, g)
    }
}

/// Order bookkeeping shared by the hooked entry points: restart metrics and
/// the quiet panic hook for injected unwinds.
fn record_order(order: &WorkerOrder, metrics: &Metrics) {
    if order.panics > 0 {
        install_quiet_panic_hook();
        metrics
            .counter("engine.worker_restarts")
            .add(u64::from(order.panics.min(MAX_WORKER_RESTARTS)));
        metrics.event(
            "engine.worker_panic",
            format!("injected panics: {}", order.panics),
        );
    }
}

/// An empty hooked map has no unit to act the order on; a fatal order still
/// cannot lose work, so it alone surfaces as an error.
fn empty_map_with_order<U>(order: &WorkerOrder) -> Result<Vec<U>, EngineError> {
    if order.panics > MAX_WORKER_RESTARTS {
        act_injected_panics(order.panics).map(|()| Vec::new())
    } else {
        Ok(Vec::new())
    }
}

/// Reduces `parts` pairwise — adjacent pairs first, then pairs of pairs —
/// until one value remains.
///
/// The reduction tree's shape depends only on `parts.len()`, never on
/// worker count or timing, so non-associative (floating-point) combines
/// produce bit-identical results no matter which engine computed the parts.
/// Returns `None` for an empty input.
pub fn tree_reduce<U>(mut parts: Vec<U>, mut g: impl FnMut(U, U) -> U) -> Option<U> {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut iter = parts.into_iter();
        while let Some(a) = iter.next() {
            next.push(match iter.next() {
                Some(b) => g(a, b),
                None => a,
            });
        }
        parts = next;
    }
    parts.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sequential_and_threaded_agree() {
        let items: Vec<u64> = (0..100).collect();
        let seq = ExecutionEngine::Sequential.map(items.clone(), |x| x * x);
        let par = ExecutionEngine::Threaded { workers: 4 }.map(items, |x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn order_is_preserved_under_imbalance() {
        // Make early items slow so late items finish first.
        let items: Vec<u64> = (0..32).collect();
        let out = ExecutionEngine::Threaded { workers: 8 }.map(items, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = ExecutionEngine::Threaded { workers: 4 }.map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = ExecutionEngine::Threaded { workers: 64 }.map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn map_reduce_is_deterministic() {
        let items: Vec<f64> = (0..1000).map(|i| f64::from(i) * 0.1).collect();
        let a = ExecutionEngine::Sequential.map_reduce(
            items.clone(),
            |x| x * 1.5,
            0.0,
            |acc, x| acc + x,
        );
        let b = ExecutionEngine::Threaded { workers: 7 }.map_reduce(
            items,
            |x| x * 1.5,
            0.0,
            |acc, x| acc + x,
        );
        // Fold order is identical (input order), so sums match exactly.
        assert_eq!(a, b);
    }

    #[test]
    fn moves_non_copy_items() {
        let items = vec![String::from("a"), String::from("bb")];
        let out = ExecutionEngine::Threaded { workers: 2 }.map(items, |s| s.len());
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn names() {
        assert_eq!(ExecutionEngine::Sequential.name(), "sequential");
        assert_eq!(
            ExecutionEngine::Threaded { workers: 3 }.name(),
            "threaded×3"
        );
        assert_eq!(ExecutionEngine::Sequential.workers(), 1);
        assert_eq!(ExecutionEngine::Threaded { workers: 3 }.workers(), 3);
    }

    #[test]
    fn range_queue_hands_out_each_unit_exactly_once() {
        // Owner pops the front, thief steals the back; together they must
        // cover [lo, hi) exactly once with no overlap.
        let queue = RangeQueue::new(3, 11);
        let mut popped = Vec::new();
        let mut stolen = Vec::new();
        loop {
            match (queue.pop_front(), queue.steal_back()) {
                (None, None) => break,
                (front, back) => {
                    popped.extend(front);
                    stolen.extend(back);
                }
            }
        }
        assert!(popped.iter().all(|u| stolen.iter().all(|s| s != u)));
        let mut all: Vec<usize> = popped.iter().chain(stolen.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (3..11).collect::<Vec<usize>>());
    }

    #[test]
    fn range_queue_survives_concurrent_hammering() {
        // 4 threads race pop/steal on one queue; every unit must be claimed
        // exactly once across all of them.
        let queue = Arc::new(RangeQueue::new(0, 1024));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let unit = if t % 2 == 0 {
                            queue.pop_front()
                        } else {
                            queue.steal_back()
                        };
                        match unit {
                            Some(u) => mine.push(u),
                            None => break,
                        }
                    }
                    mine
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1024).collect::<Vec<usize>>());
    }

    #[test]
    fn pool_threads_are_reused_across_calls() {
        // A spawn-per-call engine would mint fresh thread ids on every map;
        // the persistent pool serves every call from the same helper
        // threads. The submitting thread participates too, so exclude it.
        let engine = ExecutionEngine::Threaded { workers: 3 };
        let caller = std::thread::current().id();
        let mut helper_ids = HashSet::new();
        for _ in 0..8 {
            for id in engine.map(vec![(); 64], |()| std::thread::current().id()) {
                if id != caller {
                    helper_ids.insert(id);
                }
            }
        }
        assert!(
            helper_ids.len() <= 3,
            "saw {} distinct helper threads",
            helper_ids.len()
        );
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let result = panic::catch_unwind(|| {
            ExecutionEngine::Threaded { workers: 2 }.map(vec![1u32, 2, 3, 4], |x| {
                if x == 3 {
                    panic!("boom {x}");
                }
                x
            })
        });
        let payload = result.expect_err("map must propagate the worker panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic! with a formatted message carries a String");
        assert_eq!(msg, "boom 3");
    }

    #[test]
    fn pool_survives_worker_panics() {
        let engine = ExecutionEngine::Threaded { workers: 2 };
        for round in 0..3 {
            let result = panic::catch_unwind(|| {
                engine.map((0..64u64).collect(), |x| {
                    if x % 16 == 7 {
                        panic!("round {round}");
                    }
                    x
                })
            });
            assert!(result.is_err());
            // The same pool keeps serving normal work afterwards.
            let ok = engine.map((0..64u64).collect(), |x| x + 1);
            assert_eq!(ok, (1..=64).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn try_map_converts_genuine_panics_to_errors() {
        let err = ExecutionEngine::Threaded { workers: 2 }
            .try_map((0..16u32).collect(), |x| {
                if x == 9 {
                    panic!("kaput {x}");
                }
                x
            })
            .expect_err("panicking task must error");
        assert_eq!(err, EngineError::WorkerPanic("kaput 9".to_owned()));

        let ok = ExecutionEngine::Sequential.try_map(vec![1, 2, 3], |x| x * 2);
        assert_eq!(ok, Ok(vec![2, 4, 6]));
    }

    /// Hook ordering a fixed number of injected panics at a fixed target.
    #[derive(Debug)]
    struct PanicOrder(u32);

    impl cdp_faults::FaultHook for PanicOrder {
        fn next_worker_order(&self) -> WorkerOrder {
            WorkerOrder {
                panics: self.0,
                target: 5,
                delay: std::time::Duration::ZERO,
            }
        }
    }

    #[test]
    fn injected_panics_are_restarted_without_changing_results() {
        let items: Vec<u64> = (0..200).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::Threaded { workers: 2 },
            ExecutionEngine::Threaded { workers: 5 },
        ] {
            let out = engine
                .try_map_with_hook(items.clone(), |x| x * 3, &PanicOrder(MAX_WORKER_RESTARTS))
                .expect("restartable order must recover");
            assert_eq!(out, expected, "engine {}", engine.name());
        }
    }

    #[test]
    fn fatal_injected_order_is_an_error_not_a_process_panic() {
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::Threaded { workers: 3 },
        ] {
            let err = engine
                .try_map_with_hook(
                    (0..64u64).collect(),
                    |x| x,
                    &PanicOrder(MAX_WORKER_RESTARTS + 1),
                )
                .expect_err("order beyond the restart budget is fatal");
            assert!(matches!(err, EngineError::WorkerPanic(_)));
            // The pool keeps serving afterwards.
            assert_eq!(engine.map(vec![1, 2], |x| x + 1), vec![2, 3]);
        }
    }

    #[test]
    fn map_with_hook_noop_hook_matches_map() {
        let items: Vec<u64> = (0..50).collect();
        let plain = ExecutionEngine::Threaded { workers: 4 }.map(items.clone(), |x| x + 7);
        let hooked = ExecutionEngine::Threaded { workers: 4 }.map_with_hook(
            items,
            |x| x + 7,
            &cdp_faults::NoFaults,
        );
        assert_eq!(plain, hooked);
    }

    /// A panic payload whose `Drop` panics — the worst case for the panic
    /// slot's bookkeeping: dropping a second payload while holding the slot
    /// lock would poison it *and* kill the participant before its
    /// completion count, hanging the caller forever.
    struct BoomOnDrop;

    impl Drop for BoomOnDrop {
        fn drop(&mut self) {
            if !std::thread::panicking() {
                panic!("payload drop bomb");
            }
        }
    }

    #[test]
    fn panic_inside_completion_critical_section_does_not_poison_the_pool() {
        install_quiet_panic_hook();
        let engine = ExecutionEngine::Threaded { workers: 4 };
        // Every unit panics with a drop-bomb payload: the first payload is
        // stashed and re-raised here, all the extra ones detonate inside the
        // participants' cleanup, outside the slot lock and behind their own
        // catch_unwind, so the completion count still reaches `units`.
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            engine.map((0..64u64).collect(), |_| -> u64 {
                panic::panic_any(BoomOnDrop);
            })
        }));
        let payload = result.expect_err("map must re-raise the first panic");
        assert!(payload.downcast_ref::<BoomOnDrop>().is_some());
        // Never drop the re-raised bomb on this thread.
        std::mem::forget(payload);

        // The same pool (and its locks) keeps serving normal work.
        for _ in 0..3 {
            let ok = engine.map((0..64u64).collect(), |x| x + 1);
            assert_eq!(ok, (1..=64).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn observed_map_records_engine_metrics() {
        let metrics = Metrics::collecting();
        let engine = ExecutionEngine::Threaded { workers: 2 };
        let out = engine.map_observed((0..32u64).collect(), |x| x * 2, &metrics);
        assert_eq!(out.len(), 32);
        let ok = engine.try_map_with_hook_observed(
            (0..32u64).collect(),
            |x| x,
            &PanicOrder(2),
            &metrics,
        );
        assert!(ok.is_ok());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("engine.map_calls"), 2);
        assert!(snap.counter("engine.tasks") >= 2);
        assert_eq!(snap.counter("engine.worker_restarts"), 2);
        let waits = snap.histogram("engine.barrier_wait_secs");
        assert!(waits.is_some_and(|h| h.count == 2));
        let spans = snap.histogram("engine.map_secs");
        assert!(spans.is_some_and(|h| h.count == 2));
        // The stealing scheduler's observables: one queue-depth sample and
        // one steal sample per threaded map, queue depth = units scheduled.
        let depth = snap.histogram("engine.queue_depth");
        assert!(depth.is_some_and(|h| h.count == 2 && h.sum == snap.counter("engine.tasks") as f64));
        let steals = snap.histogram("engine.steal");
        assert!(steals.is_some_and(|h| h.count == 2));
    }

    #[test]
    fn traced_map_builds_cross_thread_span_tree() {
        let tracer = Tracer::collecting();
        let root = tracer.root("caller");
        let out = ExecutionEngine::Threaded { workers: 2 }.map_traced(
            (0..64u64).collect(),
            |x| x + 1,
            &Metrics::disabled(),
            &tracer,
            root.context(),
        );
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
        root.finish();

        let snap = tracer.snapshot();
        snap.validate().unwrap();
        assert_eq!(snap.span_count("caller"), 1);
        assert_eq!(snap.span_count("engine.map"), 1);
        assert!(snap.span_count("engine.task") >= 2);
        for task in snap.spans.iter().filter(|s| s.name == "engine.task") {
            assert_eq!(snap.parent_name(task), Some("engine.map"));
        }
        // With tracing enabled every unit runs on pool threads, the map
        // call on this one: the single trace tree spans threads.
        assert!(snap.crosses_threads());
    }

    #[test]
    fn injected_restarts_appear_as_restart_spans() {
        let tracer = Tracer::collecting();
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::Threaded { workers: 2 },
        ] {
            let out = engine
                .try_map_with_hook_traced(
                    (0..32u64).collect(),
                    |x| x,
                    &PanicOrder(2),
                    &Metrics::disabled(),
                    &tracer,
                    None,
                )
                .expect("restartable order must recover");
            assert_eq!(out.len(), 32);
        }
        let snap = tracer.snapshot();
        snap.validate().unwrap();
        assert_eq!(snap.span_count("engine.restart"), 2);
        for restart in snap.spans.iter().filter(|s| s.name == "engine.restart") {
            assert_eq!(snap.parent_name(restart), Some("engine.task"));
        }
    }

    #[test]
    fn disabled_tracer_map_matches_plain_map() {
        let items: Vec<u64> = (0..100).collect();
        let plain = ExecutionEngine::Threaded { workers: 3 }.map(items.clone(), |x| x * x);
        let traced = ExecutionEngine::Threaded { workers: 3 }.map_traced(
            items,
            |x| x * x,
            &Metrics::disabled(),
            &Tracer::disabled(),
            None,
        );
        assert_eq!(plain, traced);
    }

    #[test]
    fn map_slice_borrows_and_matches_owned_map() {
        let items: Vec<u64> = (0..300).collect();
        let owned = ExecutionEngine::Threaded { workers: 3 }.map(items.clone(), |x| x * 2 + 1);
        let borrowed = ExecutionEngine::Threaded { workers: 3 }.map_slice(&items, |x| x * 2 + 1);
        let sequential = ExecutionEngine::Sequential.map_slice(&items, |x| x * 2 + 1);
        assert_eq!(owned, borrowed);
        assert_eq!(owned, sequential);
        // The input vector is untouched.
        assert_eq!(items, (0..300).collect::<Vec<u64>>());
    }

    #[test]
    fn map_parts_matches_manual_sharding_bit_for_bit() {
        let items: Vec<f64> = (0..1000).map(|i| f64::from(i) * 0.37).collect();
        let part_sum = |part: &[f64]| part.iter().sum::<f64>();
        let manual: Vec<f64> = items.chunks(64).map(part_sum).collect();
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::Threaded { workers: 1 },
            ExecutionEngine::Threaded { workers: 4 },
        ] {
            let parts = engine.map_parts(&items, 64, part_sum);
            assert_eq!(parts.len(), manual.len());
            for (a, b) in parts.iter().zip(&manual) {
                assert_eq!(a.to_bits(), b.to_bits(), "engine {}", engine.name());
            }
        }
        // Empty input yields no parts on any engine.
        assert!(ExecutionEngine::Threaded { workers: 2 }
            .map_parts(&[] as &[f64], 64, part_sum)
            .is_empty());
    }

    #[test]
    fn map_indexed_covers_the_index_space_in_order() {
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::Threaded { workers: 4 },
        ] {
            let out = engine.map_indexed(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<usize>>());
            assert!(engine.map_indexed(0, |i| i).is_empty());
        }
    }

    #[test]
    fn indexed_hooked_map_recovers_and_fails_like_the_owned_one() {
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::Threaded { workers: 3 },
        ] {
            let ok = engine
                .try_map_indexed_with_hook_traced(
                    64,
                    |i| i + 1,
                    &PanicOrder(MAX_WORKER_RESTARTS),
                    &Metrics::disabled(),
                    &Tracer::disabled(),
                    None,
                )
                .expect("restartable order must recover");
            assert_eq!(ok, (1..=64).collect::<Vec<usize>>());
            let err = engine
                .try_map_indexed_with_hook_traced(
                    64,
                    |i| i,
                    &PanicOrder(MAX_WORKER_RESTARTS + 1),
                    &Metrics::disabled(),
                    &Tracer::disabled(),
                    None,
                )
                .expect_err("order beyond the restart budget is fatal");
            assert!(matches!(err, EngineError::WorkerPanic(_)));
        }
    }

    #[test]
    fn stealing_is_observed_when_load_is_imbalanced() {
        // One slow unit at the front: the caller gets stuck on it while the
        // helper drains its own range and then steals the caller's
        // remaining units (or vice versa). Steals are timing-dependent, so
        // only the observation plumbing is asserted strictly; the steal
        // count itself is just recorded as a histogram sample.
        let metrics = Metrics::collecting();
        let engine = ExecutionEngine::Threaded { workers: 2 };
        let out = engine.map_observed(
            (0..64u64).collect(),
            |x| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                x
            },
            &metrics,
        );
        assert_eq!(out.len(), 64);
        let snap = metrics.snapshot();
        let steals = snap.histogram("engine.steal").expect("steal observed");
        assert_eq!(steals.count, 1);
        assert!(steals.sum <= snap.counter("engine.tasks") as f64);
    }

    #[test]
    fn tree_reduce_is_fixed_shape() {
        // ((0+1)+(2+3)) + (4) for 5 parts — verify against the hand-built tree.
        let parts = vec![0.1f64, 0.2, 0.3, 0.4, 0.5];
        let reduced = tree_reduce(parts, |a, b| a + b).unwrap();
        let expected: f64 = ((0.1 + 0.2) + (0.3 + 0.4)) + 0.5;
        assert_eq!(reduced.to_bits(), expected.to_bits());
        assert_eq!(tree_reduce(Vec::<f64>::new(), |a, b| a + b), None);
        assert_eq!(tree_reduce(vec![7], |a, b| a + b), Some(7));
    }
}
