//! The deployment checkpoint payload — every piece of *dynamic* state a
//! running deployment owns — and its binary codec.
//!
//! A checkpoint deliberately captures only what evolves at runtime: model
//! weights and per-coordinate optimizer accumulators, each stateful
//! component's online statistics, the prequential and cost curves, the
//! scheduler-context inputs (Eq. 6), the materialization manifest (chunk
//! *references* only — evicted features re-materialize on demand, §3.4),
//! the sampler's RNG cursor, fault-injection counters, and the metrics
//! snapshot. Static configuration — loss, optimizer kind, regularizer,
//! batch sizes, scheduler, budgets — is *not* stored: resume receives the
//! same [`DeploymentSpec`](crate::presets::DeploymentSpec) and
//! [`DeploymentConfig`](crate::deployment::DeploymentConfig) the original
//! run used, and the checkpoint only makes sense against them.
//!
//! The encoding is hand-rolled big-endian binary (the workspace has no
//! serialization dependency): integers as fixed-width BE, floats as
//! `to_bits` BE (bit-exact round trips, the determinism contract), strings
//! and byte blobs as `u32` length + payload. The
//! [`CheckpointDir`](cdp_storage::checkpoint::CheckpointDir) file layer
//! adds magic/version/CRC framing and atomic-rename durability around this
//! payload; a malformed payload decodes to [`StorageError::Corrupt`], never
//! a panic.

use std::collections::BTreeMap;

use cdp_faults::FaultStats;
use cdp_ml::TrainReport;
use cdp_obs::{Event, HistogramSnapshot, LineageEntry, LineageEventKind, MetricsSnapshot};
use cdp_pipeline::PipelineCounters;
use cdp_storage::{StorageError, StoreStats, TieredStats};

/// A point-in-time capture of a deployment's dynamic state, taken at a
/// chunk boundary (after chunk `chunk_idx`'s arrival, evaluation, learning,
/// and any training fired by it were fully processed).
#[derive(Debug, Clone)]
pub struct DeploymentCheckpoint {
    /// Stream index of the last fully processed deployment chunk.
    pub chunk_idx: u64,
    /// Simulated deployment-clock seconds at the boundary.
    pub now_secs: f64,
    /// Model weights (dense).
    pub weights: Vec<f64>,
    /// Optimizer step counter `t`.
    pub opt_t: u64,
    /// First per-coordinate optimizer accumulator.
    pub opt_acc1: Vec<f64>,
    /// Second per-coordinate optimizer accumulator.
    pub opt_acc2: Vec<f64>,
    /// Training points the trainer has consumed.
    pub points_seen: u64,
    /// Serialized online statistics of every pipeline stage (components
    /// plus the encoder), in pipeline order.
    pub component_states: Vec<Vec<u8>>,
    /// Pipeline work counters (the cost-accounting base).
    pub pipeline_counters: PipelineCounters,
    /// Prequential examples evaluated.
    pub eval_count: u64,
    /// Prequential raw error accumulator.
    pub eval_acc: f64,
    /// `(examples_seen, cumulative_error)` curve so far.
    pub eval_curve: Vec<(u64, f64)>,
    /// Accounted seconds per cost phase, in `Phase::ALL` order.
    pub accounted: [f64; 4],
    /// `(chunk_index, cumulative_accounted_seconds)` curve so far.
    pub cost_curve: Vec<(u64, f64)>,
    /// Chunks since the last training (scheduler input).
    pub chunks_since_training: u64,
    /// Accounted seconds of the last proactive training (Eq. 6's `T`).
    pub last_training_secs: f64,
    /// Deployment-clock seconds when training last fired.
    pub last_training_at_secs: f64,
    /// Proactive-training instances executed so far.
    pub proactive_runs: u64,
    /// Accounted proactive seconds summed so far.
    pub proactive_secs_sum: f64,
    /// Full retrainings executed so far (periodical mode).
    pub retrain_runs: u64,
    /// Drift level fed to the drift-adaptive scheduler (0/1/2).
    pub drift_level: u8,
    /// Drift monitor baseline window, oldest first.
    pub drift_baseline: Vec<f64>,
    /// Drift monitor recent window, oldest first.
    pub drift_recent: Vec<f64>,
    /// Error accumulator at the previous chunk boundary (per-chunk-error
    /// delta base for the drift monitor).
    pub prev_acc: f64,
    /// Example count at the previous chunk boundary.
    pub prev_count: u64,
    /// The sampler's raw RNG state, so resumed sampling draws the same
    /// future sequence.
    pub sampler_rng: u64,
    /// Fault-injection and recovery counters at the boundary.
    pub fault_stats: FaultStats,
    /// The fault injector's worker-reseed epoch.
    pub fault_epoch: u64,
    /// Chunk-store behaviour counters.
    pub store_stats: StoreStats,
    /// Storage-tier counters (spills, disk hits, fallbacks).
    pub tiered_stats: TieredStats,
    /// Timestamps of the feature chunks materialized in memory at the
    /// boundary, oldest first — references only, never feature bytes.
    pub manifest: Vec<u64>,
    /// The initial-training report (carried into the final result).
    pub initial_report: TrainReport,
    /// Checkpoint writes completed *before* this one.
    pub ckpt_writes: u64,
    /// Bytes written by those checkpoints.
    pub ckpt_bytes: u64,
    /// Checkpoint restores performed by the run that wrote this.
    pub ckpt_restores: u64,
    /// Full metrics snapshot at the boundary (taken before this write's
    /// own `checkpoint.*` accounting, so it is causally consistent with
    /// the state above).
    pub metrics: MetricsSnapshot,
}

impl DeploymentCheckpoint {
    /// Serializes the checkpoint payload under the current schema.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(cdp_storage::CHECKPOINT_SCHEMA.0)
    }

    /// Serializes the checkpoint payload under schema `version` (pre-v3
    /// layouts omit the `compactions`/`gc_runs` store counters). Kept public
    /// so compatibility tests can fabricate genuinely old checkpoints.
    pub fn encode_versioned(&self, version: u16) -> Vec<u8> {
        let v3_store_stats = version >= 3;
        let mut out = Vec::with_capacity(4096);
        put_u64(&mut out, self.chunk_idx);
        put_f64(&mut out, self.now_secs);
        put_f64_vec(&mut out, &self.weights);
        put_u64(&mut out, self.opt_t);
        put_f64_vec(&mut out, &self.opt_acc1);
        put_f64_vec(&mut out, &self.opt_acc2);
        put_u64(&mut out, self.points_seen);
        put_u32(&mut out, self.component_states.len() as u32);
        for state in &self.component_states {
            put_bytes(&mut out, state);
        }
        put_u64(&mut out, self.pipeline_counters.parsed_records);
        put_u64(&mut out, self.pipeline_counters.update_rows);
        put_u64(&mut out, self.pipeline_counters.transform_rows);
        put_u64(&mut out, self.pipeline_counters.encoded_points);
        put_u64(&mut out, self.eval_count);
        put_f64(&mut out, self.eval_acc);
        put_curve(&mut out, &self.eval_curve);
        for secs in self.accounted {
            put_f64(&mut out, secs);
        }
        put_curve(&mut out, &self.cost_curve);
        put_u64(&mut out, self.chunks_since_training);
        put_f64(&mut out, self.last_training_secs);
        put_f64(&mut out, self.last_training_at_secs);
        put_u64(&mut out, self.proactive_runs);
        put_f64(&mut out, self.proactive_secs_sum);
        put_u64(&mut out, self.retrain_runs);
        out.push(self.drift_level);
        put_f64_vec(&mut out, &self.drift_baseline);
        put_f64_vec(&mut out, &self.drift_recent);
        put_f64(&mut out, self.prev_acc);
        put_u64(&mut out, self.prev_count);
        put_u64(&mut out, self.sampler_rng);
        for v in fault_stats_fields(&self.fault_stats) {
            put_u64(&mut out, v);
        }
        put_u64(&mut out, self.fault_epoch);
        let store_fields = store_stats_fields(&self.store_stats);
        let n_store_fields = if v3_store_stats {
            store_fields.len()
        } else {
            store_fields.len() - 2
        };
        for v in &store_fields[..n_store_fields] {
            put_u64(&mut out, *v);
        }
        for v in tiered_stats_fields(&self.tiered_stats) {
            put_u64(&mut out, v);
        }
        put_u64_vec(&mut out, &self.manifest);
        put_u64(&mut out, self.initial_report.epochs as u64);
        put_u64(&mut out, self.initial_report.steps);
        put_f64(&mut out, self.initial_report.initial_loss);
        put_f64(&mut out, self.initial_report.final_loss);
        out.push(u8::from(self.initial_report.converged));
        put_u64(&mut out, self.ckpt_writes);
        put_u64(&mut out, self.ckpt_bytes);
        put_u64(&mut out, self.ckpt_restores);
        encode_metrics(&mut out, &self.metrics);
        out
    }

    /// Decodes a checkpoint payload written by this build (the current
    /// schema). See [`DeploymentCheckpoint::decode_versioned`] for reading
    /// older checkpoints.
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] on any truncated, malformed, or
    /// trailing-garbage input — never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, StorageError> {
        Self::decode_versioned(cdp_storage::CHECKPOINT_SCHEMA.0, bytes)
    }

    /// Decodes a checkpoint payload written under schema `version`.
    ///
    /// Schema v3 (the columnar-store release) extended the store-stats block
    /// from 7 to 9 counters (`compactions`, `gc_runs`); pre-v3 payloads
    /// decode with those counters at zero — a fresh compaction/GC history,
    /// exactly what a store restored from an old checkpoint has.
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] on any truncated, malformed, or
    /// trailing-garbage input — never a panic.
    pub fn decode_versioned(version: u16, bytes: &[u8]) -> Result<Self, StorageError> {
        let v3_store_stats = version >= 3;
        let mut r = Reader { buf: bytes };
        let chunk_idx = r.u64()?;
        let now_secs = r.f64()?;
        let weights = r.f64_vec()?;
        let opt_t = r.u64()?;
        let opt_acc1 = r.f64_vec()?;
        let opt_acc2 = r.f64_vec()?;
        let points_seen = r.u64()?;
        let n_states = r.u32()?;
        let mut component_states = Vec::new();
        for _ in 0..n_states {
            component_states.push(r.bytes()?);
        }
        let pipeline_counters = PipelineCounters {
            parsed_records: r.u64()?,
            update_rows: r.u64()?,
            transform_rows: r.u64()?,
            encoded_points: r.u64()?,
        };
        let eval_count = r.u64()?;
        let eval_acc = r.f64()?;
        let eval_curve = r.curve()?;
        let accounted = [r.f64()?, r.f64()?, r.f64()?, r.f64()?];
        let cost_curve = r.curve()?;
        let chunks_since_training = r.u64()?;
        let last_training_secs = r.f64()?;
        let last_training_at_secs = r.f64()?;
        let proactive_runs = r.u64()?;
        let proactive_secs_sum = r.f64()?;
        let retrain_runs = r.u64()?;
        let drift_level = r.u8()?;
        let drift_baseline = r.f64_vec()?;
        let drift_recent = r.f64_vec()?;
        let prev_acc = r.f64()?;
        let prev_count = r.u64()?;
        let sampler_rng = r.u64()?;
        let fault_stats = FaultStats {
            injected_disk_read: r.u64()?,
            injected_disk_write: r.u64()?,
            injected_corruption: r.u64()?,
            injected_worker_panics: r.u64()?,
            injected_delays: r.u64()?,
            injected_crashes: r.u64()?,
            retries: r.u64()?,
            recovered: r.u64()?,
            fallback_rematerializations: r.u64()?,
            lost_spills: r.u64()?,
            fatal: r.u64()?,
        };
        let fault_epoch = r.u64()?;
        let store_stats = StoreStats {
            raw_puts: r.u64()?,
            feature_puts: r.u64()?,
            evictions: r.u64()?,
            bytes_evicted: r.u64()?,
            feature_hits: r.u64()?,
            feature_misses: r.u64()?,
            unavailable: r.u64()?,
            compactions: if v3_store_stats { r.u64()? } else { 0 },
            gc_runs: if v3_store_stats { r.u64()? } else { 0 },
        };
        let tiered_stats = TieredStats {
            memory_hits: r.u64()?,
            disk_hits: r.u64()?,
            recomputes: r.u64()?,
            spills: r.u64()?,
            read_fallbacks: r.u64()?,
            lost_spills: r.u64()?,
        };
        let manifest = r.u64_vec()?;
        let initial_report = TrainReport {
            epochs: r.u64()? as usize,
            steps: r.u64()?,
            initial_loss: r.f64()?,
            final_loss: r.f64()?,
            converged: r.u8()? != 0,
        };
        let ckpt_writes = r.u64()?;
        let ckpt_bytes = r.u64()?;
        let ckpt_restores = r.u64()?;
        let metrics = decode_metrics(&mut r)?;
        r.finish()?;
        Ok(Self {
            chunk_idx,
            now_secs,
            weights,
            opt_t,
            opt_acc1,
            opt_acc2,
            points_seen,
            component_states,
            pipeline_counters,
            eval_count,
            eval_acc,
            eval_curve,
            accounted,
            cost_curve,
            chunks_since_training,
            last_training_secs,
            last_training_at_secs,
            proactive_runs,
            proactive_secs_sum,
            retrain_runs,
            drift_level,
            drift_baseline,
            drift_recent,
            prev_acc,
            prev_count,
            sampler_rng,
            fault_stats,
            fault_epoch,
            store_stats,
            tiered_stats,
            manifest,
            initial_report,
            ckpt_writes,
            ckpt_bytes,
            ckpt_restores,
            metrics,
        })
    }
}

fn fault_stats_fields(s: &FaultStats) -> [u64; 11] {
    [
        s.injected_disk_read,
        s.injected_disk_write,
        s.injected_corruption,
        s.injected_worker_panics,
        s.injected_delays,
        s.injected_crashes,
        s.retries,
        s.recovered,
        s.fallback_rematerializations,
        s.lost_spills,
        s.fatal,
    ]
}

fn store_stats_fields(s: &StoreStats) -> [u64; 9] {
    [
        s.raw_puts,
        s.feature_puts,
        s.evictions,
        s.bytes_evicted,
        s.feature_hits,
        s.feature_misses,
        s.unavailable,
        s.compactions,
        s.gc_runs,
    ]
}

fn tiered_stats_fields(s: &TieredStats) -> [u64; 6] {
    [
        s.memory_hits,
        s.disk_hits,
        s.recomputes,
        s.spills,
        s.read_fallbacks,
        s.lost_spills,
    ]
}

// ---- MetricsSnapshot codec ----

fn encode_metrics(out: &mut Vec<u8>, snap: &MetricsSnapshot) {
    put_u32(out, snap.counters.len() as u32);
    for (name, value) in &snap.counters {
        put_str(out, name);
        put_u64(out, *value);
    }
    put_u32(out, snap.gauges.len() as u32);
    for (name, value) in &snap.gauges {
        put_str(out, name);
        put_f64(out, *value);
    }
    put_u32(out, snap.histograms.len() as u32);
    for (name, h) in &snap.histograms {
        put_str(out, name);
        put_f64_vec(out, &h.bounds);
        put_u64_vec(out, &h.buckets);
        put_u64(out, h.count);
        put_f64(out, h.sum);
        put_f64(out, h.min);
        put_f64(out, h.max);
        put_u64(out, h.dropped);
    }
    put_u32(out, snap.events.len() as u32);
    for event in &snap.events {
        put_f64(out, event.at_secs);
        put_str(out, &event.name);
        put_str(out, &event.detail);
    }
    put_u64(out, snap.dropped_events);
    put_u32(out, snap.lineage.len() as u32);
    for (chunk_ts, entries) in &snap.lineage {
        put_u64(out, *chunk_ts);
        put_u32(out, entries.len() as u32);
        for entry in entries {
            put_f64(out, entry.at_secs);
            out.push(kind_to_u8(entry.kind));
        }
    }
    put_u64(out, snap.dropped_lineage);
}

fn decode_metrics(r: &mut Reader<'_>) -> Result<MetricsSnapshot, StorageError> {
    let mut counters = BTreeMap::new();
    for _ in 0..r.u32()? {
        let name = r.string()?;
        counters.insert(name, r.u64()?);
    }
    let mut gauges = BTreeMap::new();
    for _ in 0..r.u32()? {
        let name = r.string()?;
        gauges.insert(name, r.f64()?);
    }
    let mut histograms = BTreeMap::new();
    for _ in 0..r.u32()? {
        let name = r.string()?;
        let h = HistogramSnapshot {
            bounds: r.f64_vec()?,
            buckets: r.u64_vec()?,
            count: r.u64()?,
            sum: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
            dropped: r.u64()?,
        };
        histograms.insert(name, h);
    }
    let mut events = Vec::new();
    for _ in 0..r.u32()? {
        events.push(Event {
            at_secs: r.f64()?,
            name: r.string()?,
            detail: r.string()?,
        });
    }
    let dropped_events = r.u64()?;
    let mut lineage = BTreeMap::new();
    for _ in 0..r.u32()? {
        let chunk_ts = r.u64()?;
        let mut entries = Vec::new();
        for _ in 0..r.u32()? {
            entries.push(LineageEntry {
                at_secs: r.f64()?,
                kind: kind_from_u8(r.u8()?)?,
            });
        }
        lineage.insert(chunk_ts, entries);
    }
    let dropped_lineage = r.u64()?;
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
        events,
        dropped_events,
        lineage,
        dropped_lineage,
    })
}

fn kind_to_u8(kind: LineageEventKind) -> u8 {
    match kind {
        LineageEventKind::Arrival => 0,
        LineageEventKind::Transform => 1,
        LineageEventKind::Materialize => 2,
        LineageEventKind::Evict => 3,
        LineageEventKind::Spill => 4,
        LineageEventKind::LostSpill => 5,
        LineageEventKind::SpillRead => 6,
        LineageEventKind::Rematerialize => 7,
        LineageEventKind::SpillReadFallback => 8,
        LineageEventKind::SampledForTraining => 9,
    }
}

fn kind_from_u8(v: u8) -> Result<LineageEventKind, StorageError> {
    Ok(match v {
        0 => LineageEventKind::Arrival,
        1 => LineageEventKind::Transform,
        2 => LineageEventKind::Materialize,
        3 => LineageEventKind::Evict,
        4 => LineageEventKind::Spill,
        5 => LineageEventKind::LostSpill,
        6 => LineageEventKind::SpillRead,
        7 => LineageEventKind::Rematerialize,
        8 => LineageEventKind::SpillReadFallback,
        9 => LineageEventKind::SampledForTraining,
        other => {
            return Err(StorageError::Corrupt(format!(
                "unknown lineage event kind {other}"
            )))
        }
    })
}

// ---- primitive writers ----

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_be_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_f64_vec(out: &mut Vec<u8>, values: &[f64]) {
    put_u32(out, values.len() as u32);
    for v in values {
        put_f64(out, *v);
    }
}

fn put_u64_vec(out: &mut Vec<u8>, values: &[u64]) {
    put_u32(out, values.len() as u32);
    for v in values {
        put_u64(out, *v);
    }
}

fn put_curve(out: &mut Vec<u8>, curve: &[(u64, f64)]) {
    put_u32(out, curve.len() as u32);
    for (x, y) in curve {
        put_u64(out, *x);
        put_f64(out, *y);
    }
}

// ---- primitive reader ----

/// A bounds-checked cursor over the payload; every read surfaces
/// truncation as [`StorageError::Corrupt`]. Element counts are never
/// pre-allocated — a hostile length field just hits end-of-buffer.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.buf.len() < n {
            return Err(StorageError::Corrupt("checkpoint payload truncated".into()));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, StorageError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, StorageError> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| StorageError::Corrupt("checkpoint string is not UTF-8".into()))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, StorageError> {
        let n = self.u32()?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn u64_vec(&mut self) -> Result<Vec<u64>, StorageError> {
        let n = self.u32()?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn curve(&mut self) -> Result<Vec<(u64, f64)>, StorageError> {
        let n = self.u32()?;
        let mut out = Vec::new();
        for _ in 0..n {
            let x = self.u64()?;
            out.push((x, self.f64()?));
        }
        Ok(out)
    }

    fn finish(&self) -> Result<(), StorageError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(StorageError::Corrupt(format!(
                "checkpoint payload has {} trailing bytes",
                self.buf.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> DeploymentCheckpoint {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("deployment.chunks".into(), 12);
        metrics.gauges.insert("drift.level".into(), 1.0);
        metrics.histograms.insert(
            "proactive.accounted_secs".into(),
            HistogramSnapshot {
                bounds: vec![0.1, 1.0],
                buckets: vec![3, 1, 0],
                count: 4,
                sum: 0.9,
                min: 0.05,
                max: 0.6,
                dropped: 0,
            },
        );
        metrics.events.push(Event {
            at_secs: 120.0,
            name: "drift.level_change".into(),
            detail: "chunk 7: 0 -> 1".into(),
        });
        metrics.dropped_events = 2;
        metrics.lineage.insert(
            5,
            vec![
                LineageEntry {
                    at_secs: 60.0,
                    kind: LineageEventKind::Arrival,
                },
                LineageEntry {
                    at_secs: 61.0,
                    kind: LineageEventKind::Materialize,
                },
            ],
        );
        metrics.dropped_lineage = 1;
        DeploymentCheckpoint {
            chunk_idx: 17,
            now_secs: 1020.0,
            weights: vec![0.25, -1.5, std::f64::consts::PI],
            opt_t: 42,
            opt_acc1: vec![0.1, 0.2, 0.3],
            opt_acc2: vec![0.0; 3],
            points_seen: 999,
            component_states: vec![vec![], vec![1, 2, 3], vec![0xff; 9]],
            pipeline_counters: PipelineCounters {
                parsed_records: 1,
                update_rows: 2,
                transform_rows: 3,
                encoded_points: 4,
            },
            eval_count: 1200,
            eval_acc: 88.5,
            eval_curve: vec![(100, 0.4), (200, 0.35)],
            accounted: [1.0, 2.0, 3.0, 4.0],
            cost_curve: vec![(10, 1.5), (11, 2.5)],
            chunks_since_training: 3,
            last_training_secs: 0.7,
            last_training_at_secs: 600.0,
            proactive_runs: 5,
            proactive_secs_sum: 3.5,
            retrain_runs: 0,
            drift_level: 1,
            drift_baseline: vec![0.1, 0.2],
            drift_recent: vec![0.3],
            prev_acc: 88.0,
            prev_count: 1100,
            sampler_rng: 0xDEAD_BEEF_CAFE_F00D,
            fault_stats: FaultStats {
                injected_disk_read: 1,
                injected_disk_write: 2,
                injected_corruption: 3,
                injected_worker_panics: 4,
                injected_delays: 5,
                injected_crashes: 6,
                retries: 7,
                recovered: 8,
                fallback_rematerializations: 9,
                lost_spills: 10,
                fatal: 11,
            },
            fault_epoch: 2,
            store_stats: StoreStats {
                raw_puts: 20,
                feature_puts: 19,
                evictions: 4,
                bytes_evicted: 4096,
                feature_hits: 7,
                feature_misses: 2,
                unavailable: 0,
                compactions: 3,
                gc_runs: 2,
            },
            tiered_stats: TieredStats {
                memory_hits: 7,
                disk_hits: 1,
                recomputes: 1,
                spills: 4,
                read_fallbacks: 0,
                lost_spills: 0,
            },
            manifest: vec![13, 14, 15, 16, 17],
            initial_report: TrainReport {
                epochs: 3,
                steps: 120,
                initial_loss: 0.9,
                final_loss: 0.2,
                converged: true,
            },
            ckpt_writes: 2,
            ckpt_bytes: 8192,
            ckpt_restores: 1,
            metrics,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let original = sample_checkpoint();
        let encoded = original.encode();
        let decoded = match DeploymentCheckpoint::decode(&encoded) {
            Ok(c) => c,
            Err(e) => panic!("decode failed: {e}"),
        };
        // Bit-exactness via re-encoding: every field participates in the
        // byte stream, so byte equality is field equality (including f64
        // bit patterns).
        assert_eq!(decoded.encode(), encoded);
        assert_eq!(decoded.chunk_idx, 17);
        assert_eq!(decoded.weights[2].to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(decoded.component_states.len(), 3);
        assert_eq!(decoded.metrics.counter("deployment.chunks"), 12);
        assert_eq!(decoded.metrics.lineage[&5].len(), 2);
        assert_eq!(decoded.initial_report.epochs, 3);
        assert!(decoded.initial_report.converged);
    }

    #[test]
    fn v1_payloads_decode_with_zeroed_gc_counters() {
        let original = sample_checkpoint();
        let v1_bytes = original.encode_versioned(1);
        // The v1 layout is strictly shorter: no compactions/gc_runs fields.
        assert_eq!(v1_bytes.len() + 16, original.encode().len());
        let decoded = match DeploymentCheckpoint::decode_versioned(1, &v1_bytes) {
            Ok(c) => c,
            Err(e) => panic!("v1 decode failed: {e}"),
        };
        assert_eq!(decoded.store_stats.raw_puts, 20);
        assert_eq!(decoded.store_stats.unavailable, 0);
        // Counters that did not exist in v1 restore to zero.
        assert_eq!(decoded.store_stats.compactions, 0);
        assert_eq!(decoded.store_stats.gc_runs, 0);
        // The current decoder rejects v1 bytes as truncated, not garbage.
        assert!(matches!(
            DeploymentCheckpoint::decode(&v1_bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let encoded = sample_checkpoint().encode();
        // Check a sample of prefixes (every 7th) — exhaustive is slow.
        for len in (0..encoded.len()).step_by(7) {
            match DeploymentCheckpoint::decode(&encoded[..len]) {
                Err(StorageError::Corrupt(_)) => {}
                Ok(_) => panic!("prefix of {len} bytes decoded successfully"),
                Err(other) => panic!("prefix of {len} bytes: wrong error {other}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut encoded = sample_checkpoint().encode();
        encoded.push(0);
        assert!(matches!(
            DeploymentCheckpoint::decode(&encoded),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_lineage_kind_is_corrupt_not_panic() {
        assert!(kind_from_u8(9).is_ok());
        assert!(matches!(kind_from_u8(10), Err(StorageError::Corrupt(_))));
        // Kind codec is a bijection over all ten variants.
        for v in 0..10u8 {
            let kind = kind_from_u8(v).expect("known kind");
            assert_eq!(kind_to_u8(kind), v);
        }
    }

    #[test]
    fn hostile_length_field_errors_without_allocating() {
        // A payload claiming 4 billion weights must fail on truncation,
        // not attempt the allocation.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 0); // chunk_idx
        put_f64(&mut bytes, 0.0); // now_secs
        put_u32(&mut bytes, u32::MAX); // weights length
        assert!(matches!(
            DeploymentCheckpoint::decode(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }
}
