//! Proactive-training scheduling (paper §4.1).

use serde::{Deserialize, Serialize};

/// Runtime observations the dynamic scheduler bases its decision on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerContext {
    /// Arrival period of data chunks in (simulated) seconds.
    pub chunk_period_secs: f64,
    /// `T`: total execution time of the last proactive training, seconds.
    pub last_training_secs: f64,
    /// `pl`: average prediction latency, seconds per query.
    pub avg_prediction_latency: f64,
    /// `pr`: average prediction queries per second.
    pub prediction_rate: f64,
    /// Simulated seconds elapsed since the last proactive training (the
    /// deployment clock, advanced by `chunk_period_secs` per chunk).
    pub elapsed_secs: f64,
    /// Chunks that arrived since the last proactive training.
    pub chunks_since_last: usize,
    /// Concept-drift pressure from the error monitor: `0` stable, `1`
    /// warning, `2` drift. Only [`Scheduler::DriftAdaptive`] reads it.
    pub drift_level: u8,
}

/// When to execute the next proactive training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheduler {
    /// Fire every `every_chunks` arriving chunks — the paper's *static*
    /// scheduling ("executes the proactive training every 5 minutes / every
    /// 5 hours" translates to a fixed chunk count because chunk arrival is
    /// periodic).
    Static {
        /// Chunks between consecutive proactive trainings (≥ 1).
        every_chunks: usize,
    },
    /// The paper's *dynamic* scheduling (Eq. 6): the next training runs
    /// `T' = S · T · pr · pl` seconds after the previous one, guaranteeing
    /// the queries arriving during training (`T·pr`, needing `T·pr·pl`
    /// seconds) are answered first. `S` is the user slack hint:
    /// large (≥ 2) favours query answering, small (1 ≤ S < 2) favours
    /// training.
    Dynamic {
        /// Slack parameter `S ≥ 1`.
        slack: f64,
    },
    /// Static scheduling modulated by the drift monitor — this repository's
    /// implementation of the paper's future work ("native support for
    /// concept drift … and alleviation", §7). Under a drift *warning* the
    /// interval halves; under a full *drift* signal training fires every
    /// chunk until the error stabilizes.
    DriftAdaptive {
        /// Interval (in chunks) while the error stream is stable.
        every_chunks: usize,
    },
}

impl Scheduler {
    /// Decides whether proactive training should run now.
    pub fn should_fire(&self, ctx: &SchedulerContext) -> bool {
        match *self {
            Scheduler::Static { every_chunks } => ctx.chunks_since_last >= every_chunks.max(1),
            Scheduler::Dynamic { slack } => {
                let next_delay = Self::dynamic_interval_secs(slack, ctx);
                // A pathological measurement (NaN or ∞ leaking into T, pr,
                // or pl) must never disable training forever: clamp the
                // interval to zero, i.e. fire at the next opportunity.
                let next_delay = if next_delay.is_finite() {
                    next_delay
                } else {
                    0.0
                };
                // Never fire more than once per chunk; before the first
                // training (T = 0) fire on the first opportunity. When
                // `T·pr·pl` underflows the chunk period — routine in fast
                // synthetic runs with microsecond trainings — Eq. 6
                // degenerates *by design* to firing every chunk
                // (`Static { every_chunks: 1 }`): the training debt is
                // repaid before the next chunk even arrives.
                ctx.chunks_since_last >= 1 && ctx.elapsed_secs >= next_delay
            }
            Scheduler::DriftAdaptive { every_chunks } => {
                let every = match ctx.drift_level {
                    0 => every_chunks.max(1),
                    1 => (every_chunks / 2).max(1),
                    _ => 1,
                };
                ctx.chunks_since_last >= every
            }
        }
    }

    /// The minimum interval (in seconds) Eq. 6 yields for this context —
    /// exposed for tests and reporting.
    pub fn dynamic_interval_secs(slack: f64, ctx: &SchedulerContext) -> f64 {
        slack * ctx.last_training_secs * ctx.prediction_rate * ctx.avg_prediction_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(chunks_since_last: usize) -> SchedulerContext {
        SchedulerContext {
            chunk_period_secs: 60.0,
            last_training_secs: 0.2,
            avg_prediction_latency: 1e-3,
            prediction_rate: 1000.0,
            elapsed_secs: chunks_since_last as f64 * 60.0,
            chunks_since_last,
            drift_level: 0,
        }
    }

    #[test]
    fn static_fires_on_interval() {
        let s = Scheduler::Static { every_chunks: 5 };
        assert!(!s.should_fire(&ctx(4)));
        assert!(s.should_fire(&ctx(5)));
        assert!(s.should_fire(&ctx(9)));
    }

    #[test]
    fn static_interval_zero_is_clamped_to_one() {
        let s = Scheduler::Static { every_chunks: 0 };
        assert!(!s.should_fire(&ctx(0)));
        assert!(s.should_fire(&ctx(1)));
    }

    #[test]
    fn dynamic_eq6_matches_formula() {
        let c = ctx(1);
        // T' = S·T·pr·pl = 2 · 0.2 · 1000 · 1e-3 = 0.4 s
        let interval = Scheduler::dynamic_interval_secs(2.0, &c);
        assert!((interval - 0.4).abs() < 1e-12);
    }

    #[test]
    fn dynamic_fires_once_elapsed_exceeds_interval() {
        // Make the interval larger than one chunk period: S·T·pr·pl =
        // 4·30·10·1 = 1200 s = 20 chunk periods.
        let slow = SchedulerContext {
            chunk_period_secs: 60.0,
            last_training_secs: 30.0,
            avg_prediction_latency: 1.0,
            prediction_rate: 10.0,
            elapsed_secs: 0.0,
            chunks_since_last: 0,
            drift_level: 0,
        };
        let s = Scheduler::Dynamic { slack: 4.0 };
        assert!(!s.should_fire(&SchedulerContext {
            elapsed_secs: 19.0 * 60.0,
            chunks_since_last: 19,
            ..slow
        }));
        assert!(s.should_fire(&SchedulerContext {
            elapsed_secs: 20.0 * 60.0,
            chunks_since_last: 20,
            ..slow
        }));
    }

    #[test]
    fn dynamic_fires_immediately_before_first_training() {
        let fresh = SchedulerContext {
            last_training_secs: 0.0,
            ..ctx(1)
        };
        assert!(Scheduler::Dynamic { slack: 2.0 }.should_fire(&fresh));
        let zero = SchedulerContext {
            elapsed_secs: 0.0,
            chunks_since_last: 0,
            ..fresh
        };
        assert!(!Scheduler::Dynamic { slack: 2.0 }.should_fire(&zero));
    }

    #[test]
    fn dynamic_clamps_non_finite_intervals_to_fire() {
        // A NaN or infinite measurement must degrade to "train at the next
        // opportunity", never to "never train again".
        for bad in [f64::NAN, f64::INFINITY] {
            let c = SchedulerContext {
                last_training_secs: bad,
                ..ctx(1)
            };
            assert!(
                Scheduler::Dynamic { slack: 2.0 }.should_fire(&c),
                "T = {bad} must not disable training"
            );
        }
    }

    #[test]
    fn dynamic_sub_period_interval_degenerates_to_every_chunk() {
        // T·pr·pl far below the chunk period: documented Static{1} behaviour.
        let c = ctx(1); // interval = 2·0.2·1000·1e-3 = 0.4 s ≪ 60 s period
        assert!(Scheduler::Dynamic { slack: 2.0 }.should_fire(&c));
    }

    #[test]
    fn drift_adaptive_tightens_under_pressure() {
        let s = Scheduler::DriftAdaptive { every_chunks: 8 };
        // Stable: fires at the base interval.
        assert!(!s.should_fire(&SchedulerContext {
            drift_level: 0,
            ..ctx(7)
        }));
        assert!(s.should_fire(&SchedulerContext {
            drift_level: 0,
            ..ctx(8)
        }));
        // Warning: interval halves.
        assert!(s.should_fire(&SchedulerContext {
            drift_level: 1,
            ..ctx(4)
        }));
        assert!(!s.should_fire(&SchedulerContext {
            drift_level: 1,
            ..ctx(3)
        }));
        // Drift: every chunk.
        assert!(s.should_fire(&SchedulerContext {
            drift_level: 2,
            ..ctx(1)
        }));
    }

    #[test]
    fn larger_slack_means_less_frequent_training() {
        let base = SchedulerContext {
            chunk_period_secs: 1.0,
            last_training_secs: 2.0,
            avg_prediction_latency: 0.5,
            prediction_rate: 4.0,
            elapsed_secs: 5.0,
            chunks_since_last: 5,
            drift_level: 0,
        };
        // interval(S=1) = 4 s → fires at 5 chunks; interval(S=2) = 8 s → not yet.
        assert!(Scheduler::Dynamic { slack: 1.0 }.should_fire(&base));
        assert!(!Scheduler::Dynamic { slack: 2.0 }.should_fire(&base));
    }
}
