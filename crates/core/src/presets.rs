//! The paper's two evaluation pipelines, bound to the synthetic streams.
//!
//! * **URL pipeline** (§5.1): input parser → missing-value imputer →
//!   standard scaler → feature hasher → SVM (hinge loss).
//! * **Taxi pipeline** (§5.1): input parser → feature extractor (haversine,
//!   bearing, hour, weekday) → anomaly detector (trips > 22 h, < 10 s, or
//!   zero distance) → standard scaler → linear regression, evaluated with
//!   RMSLE.

use std::sync::Arc;

use cdp_datagen::taxi::{TaxiConfig, TaxiGenerator};
use cdp_datagen::url::{UrlConfig, UrlGenerator};
use cdp_datagen::ChunkStream;
use cdp_eval::ErrorMetric;
use cdp_ml::{ConvergenceCriteria, LossKind, OptimizerKind, Regularizer, SgdConfig};
use cdp_pipeline::anomaly::AnomalyFilter;
use cdp_pipeline::encode::{DenseEncoder, FeatureHasher};
use cdp_pipeline::extract::{taxi_features, SelectColumns, TaxiFeatureExtractor};
use cdp_pipeline::impute::MeanImputer;
use cdp_pipeline::parser::{SchemaParser, TaxiParser};
use cdp_pipeline::scale::StandardScaler;
use cdp_pipeline::{Pipeline, PipelineBuilder, PipelineError};

/// How large a preset experiment should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecScale {
    /// Seconds-scale runs for unit/integration tests.
    Tiny,
    /// The repository default: minutes-scale runs reproducing the paper's
    /// shapes (see DESIGN.md §5).
    Repo,
    /// The paper's dataset shapes (hours of compute; opt-in).
    Paper,
}

/// A deployable pipeline specification: how to build the pipeline, how to
/// train it, and the experiment defaults the paper uses for it.
#[derive(Clone)]
pub struct DeploymentSpec {
    /// Dataset/pipeline name.
    pub name: String,
    /// Quality metric.
    pub metric: ErrorMetric,
    /// SGD configuration (initial training, online updates, retraining).
    pub sgd: SgdConfig,
    /// Mini-batch size of the per-chunk online pass.
    pub online_batch: usize,
    /// Chunks sampled per proactive-training instance.
    pub sample_chunks: usize,
    /// Default static proactive-training interval, in chunks (paper: every
    /// 5 minutes for URL, every 5 hours for Taxi — 5 chunks each).
    pub proactive_every: usize,
    /// Default periodical retraining interval, in chunks (paper: every 10
    /// days for URL, monthly for Taxi).
    pub retrain_every: usize,
    /// Simulated chunk arrival period in seconds.
    pub chunk_period_secs: f64,
    factory: Arc<dyn Fn() -> Result<Pipeline, PipelineError> + Send + Sync>,
}

impl std::fmt::Debug for DeploymentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeploymentSpec")
            .field("name", &self.name)
            .field("metric", &self.metric.name())
            .field("sample_chunks", &self.sample_chunks)
            .finish()
    }
}

impl DeploymentSpec {
    /// A user-defined spec: deploy your own pipeline factory with the given
    /// metric and training configuration. Scheduling defaults (proactive
    /// every 5 chunks, retrain every 10, 60 s chunk period) can be adjusted
    /// on the returned value.
    pub fn custom(
        name: impl Into<String>,
        metric: ErrorMetric,
        sgd: SgdConfig,
        online_batch: usize,
        sample_chunks: usize,
        factory: Arc<dyn Fn() -> Result<Pipeline, PipelineError> + Send + Sync>,
    ) -> Self {
        Self {
            name: name.into(),
            metric,
            sgd,
            online_batch,
            sample_chunks,
            proactive_every: 5,
            retrain_every: 10,
            chunk_period_secs: 60.0,
            factory,
        }
    }

    /// Builds a fresh (statistics-empty) instance of the pipeline.
    ///
    /// # Errors
    /// [`PipelineError`] when the factory's components violate the builder's
    /// invariants (e.g. a non-incremental component). The deployment drivers
    /// surface this as a typed [`DeploymentError`](crate::DeploymentError)
    /// instead of panicking.
    pub fn try_build_pipeline(&self) -> Result<Pipeline, PipelineError> {
        (self.factory)()
    }

    /// Builds a fresh (statistics-empty) instance of the pipeline.
    ///
    /// # Panics
    /// When the factory fails; use
    /// [`try_build_pipeline`](Self::try_build_pipeline) in deployment-facing
    /// code.
    pub fn build_pipeline(&self) -> Pipeline {
        match self.try_build_pipeline() {
            Ok(pipeline) => pipeline,
            Err(e) => panic!("pipeline factory for {} failed: {e}", self.name),
        }
    }

    /// Returns a copy with a different SGD configuration (used by the
    /// hyperparameter-tuning experiment).
    pub fn with_sgd(&self, sgd: SgdConfig) -> Self {
        Self {
            sgd,
            ..self.clone()
        }
    }
}

/// The URL classification experiment: generator plus pipeline spec.
pub fn url_spec(scale: SpecScale) -> (UrlGenerator, DeploymentSpec) {
    let (config, hash_bits) = match scale {
        SpecScale::Tiny => (
            UrlConfig {
                days: 6,
                chunks_per_day: 3,
                rows_per_chunk: 24,
                base_vocab: 300,
                vocab_growth_per_day: 20,
                tokens_per_row: 8,
                lexical_features: 6,
                ..UrlConfig::repo_scale()
            },
            8u32,
        ),
        SpecScale::Repo => (UrlConfig::repo_scale(), 18),
        SpecScale::Paper => (UrlConfig::paper_scale(), 20),
    };
    url_spec_from(config, hash_bits, scale)
}

/// Builds the URL experiment from an explicit generator configuration —
/// for custom drift speeds, vocabulary sizes, or stream lengths.
pub fn url_spec_from(
    config: UrlConfig,
    hash_bits: u32,
    scale: SpecScale,
) -> (UrlGenerator, DeploymentSpec) {
    let generator = UrlGenerator::new(config.clone());
    let schema = generator.schema();
    let lexical = config.lexical_features;
    let factory = Arc::new(move || {
        let num_fields: Vec<String> = (0..lexical).map(|i| format!("lex{i}")).collect();
        let num_refs: Vec<&str> = num_fields.iter().map(String::as_str).collect();
        let parser = SchemaParser::new(Arc::clone(&schema), "label", &num_refs, Some("url_tokens"));
        PipelineBuilder::new(parser)
            .add(MeanImputer::new())
            .add(StandardScaler::new())
            .encoder(FeatureHasher::new(hash_bits, lexical))
    });
    let sgd = SgdConfig {
        loss: LossKind::Hinge,
        optimizer: OptimizerKind::adam(0.01),
        regularizer: Regularizer::L2(1e-3),
        batch_size: 128,
        convergence: ConvergenceCriteria {
            tolerance: 1e-3,
            max_epochs: 15,
        },
        shuffle_seed: 42,
    };
    let spec = DeploymentSpec {
        name: "URL".to_owned(),
        metric: ErrorMetric::Misclassification,
        sgd,
        // One SGD step per arriving chunk: the paper's online deployment
        // performs a single online-gradient-descent update per incoming
        // batch of training data.
        online_batch: usize::MAX,
        sample_chunks: match scale {
            SpecScale::Tiny => 3,
            SpecScale::Repo => 40,
            SpecScale::Paper => 100,
        },
        proactive_every: match scale {
            SpecScale::Tiny => 2,
            _ => 5,
        },
        retrain_every: match scale {
            SpecScale::Tiny => 5,
            // Every 10 days (paper): 10 days' worth of chunks.
            _ => 10 * config.chunks_per_day,
        },
        chunk_period_secs: 60.0,
        factory,
    };
    (generator, spec)
}

/// The Taxi regression experiment: generator plus pipeline spec.
pub fn taxi_spec(scale: SpecScale) -> (TaxiGenerator, DeploymentSpec) {
    let config = match scale {
        SpecScale::Tiny => TaxiConfig {
            hours: 30,
            initial_hours: 6,
            rows_per_chunk: 30,
            ..TaxiConfig::repo_scale()
        },
        SpecScale::Repo => TaxiConfig::repo_scale(),
        SpecScale::Paper => TaxiConfig::paper_scale(),
    };
    let generator = TaxiGenerator::new(config.clone());
    let schema = generator.schema();
    let factory = Arc::new(move || {
        let parser = TaxiParser::new(Arc::clone(&schema));
        // Keep trips with 10 s < duration < 22 h and non-zero distance.
        let anomaly = AnomalyFilter::new("taxi-anomaly-detector")
            .bound(taxi_features::DURATION_SECS, Some(10.0), Some(79_200.0))
            .bound(taxi_features::HAVERSINE_KM, Some(0.0), None);
        PipelineBuilder::new(parser)
            .add(TaxiFeatureExtractor::new())
            .add(anomaly)
            // Drop the raw-duration column before modelling (it is the label).
            .add(SelectColumns::first(taxi_features::DURATION_SECS))
            .add(StandardScaler::new())
            .encoder(DenseEncoder::new(taxi_features::DURATION_SECS))
    });
    let sgd = SgdConfig {
        loss: LossKind::Squared,
        optimizer: OptimizerKind::rmsprop(0.1),
        regularizer: Regularizer::L2(1e-4),
        // Smaller batches than the URL pipeline: the 11-dimensional taxi
        // model needs many cheap steps (the bias must travel to the mean
        // log-duration ≈ 6.5) rather than few large-batch ones. The epoch
        // cap reflects the paper's observation that the low-dimensional
        // taxi model "converges faster to a solution" when retraining; the
        // tiny scale needs more epochs because its initial set is only a
        // few mini-batches long.
        batch_size: 32,
        convergence: ConvergenceCriteria {
            tolerance: 1e-3,
            max_epochs: if scale == SpecScale::Tiny { 30 } else { 8 },
        },
        shuffle_seed: 43,
    };
    let retrain_every = match scale {
        SpecScale::Tiny => 8,
        // "Monthly": one initial-period's worth of chunks.
        _ => config.initial_hours.max(1),
    };
    let spec = DeploymentSpec {
        name: "Taxi".to_owned(),
        metric: ErrorMetric::Rmsle,
        sgd,
        // One SGD step per arriving chunk (see the URL spec).
        online_batch: usize::MAX,
        sample_chunks: match scale {
            SpecScale::Tiny => 3,
            SpecScale::Repo => 15,
            SpecScale::Paper => 720,
        },
        proactive_every: 5,
        retrain_every,
        chunk_period_secs: 3600.0,
        factory,
    };
    (generator, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_datagen::ChunkStream;

    #[test]
    fn url_pipeline_builds_and_processes() {
        let (generator, spec) = url_spec(SpecScale::Tiny);
        let mut pipeline = spec.build_pipeline();
        let chunk = generator.chunk(0);
        let fc = pipeline.fit_transform_chunk(&chunk);
        assert_eq!(fc.len(), chunk.len());
        assert!(fc.row(0).to_vector().is_sparse());
        // Labels are ±1.
        assert!(fc.rows().all(|r| r.label().abs() == 1.0));
    }

    #[test]
    fn taxi_pipeline_builds_and_filters_anomalies() {
        let (generator, spec) = taxi_spec(SpecScale::Tiny);
        let mut pipeline = spec.build_pipeline();
        let chunk = generator.chunk(0);
        let fc = pipeline.fit_transform_chunk(&chunk);
        // Some anomalies must have been dropped over enough rows...
        assert!(fc.len() <= chunk.len());
        // ... and every surviving feature vector is dense with 11 features
        // (bias + 10 engineered), matching the paper's feature size.
        assert!(fc.rows().all(|r| r.dim() == 11));
        assert!(fc.rows().all(|r| !r.to_vector().is_sparse()));
    }

    #[test]
    fn taxi_anomaly_filter_drops_planted_anomalies() {
        let (generator, spec) = taxi_spec(SpecScale::Tiny);
        let mut pipeline = spec.build_pipeline();
        let mut raw_total = 0usize;
        let mut kept_total = 0usize;
        for i in 0..10 {
            let chunk = generator.chunk(i);
            raw_total += chunk.len();
            kept_total += pipeline.fit_transform_chunk(&chunk).len();
        }
        let dropped = (raw_total - kept_total) as f64 / raw_total as f64;
        // anomaly_rate is 0.02; allow sampling noise.
        assert!((0.002..0.08).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn specs_expose_paper_defaults() {
        let (_, url) = url_spec(SpecScale::Repo);
        assert_eq!(url.proactive_every, 5);
        assert_eq!(url.retrain_every, 100); // 10 days × 10 chunks/day
        let (gen, taxi) = taxi_spec(SpecScale::Repo);
        assert_eq!(taxi.retrain_every, gen.initial_chunks());
    }

    #[test]
    fn with_sgd_overrides_only_training() {
        let (_, spec) = url_spec(SpecScale::Tiny);
        let mut sgd = spec.sgd;
        sgd.optimizer = OptimizerKind::adadelta();
        let new = spec.with_sgd(sgd);
        assert_eq!(new.name, spec.name);
        assert_eq!(new.sgd.optimizer, OptimizerKind::adadelta());
    }
}
