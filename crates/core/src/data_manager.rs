//! The data manager (paper §4.2): chunk ingestion, feature storage with
//! dynamic materialization (optionally backed by a disk spill tier), and
//! sampling for proactive training.

use std::sync::Arc;

use cdp_faults::{FaultHook, RetryPolicy};
use cdp_obs::{LineageEventKind, Metrics};
use cdp_sampling::{Sampler, SamplingStrategy};
use cdp_storage::{
    ChunkStore, FeatureChunk, RawChunk, StorageBudget, StorageError, StoreStats, TieredLookup,
    TieredStats, TieredStore, Timestamp,
};

/// One sampled chunk, as handed to the pipeline manager: ready-to-use
/// features (from memory or read back from the disk tier) or the raw chunk
/// that must be re-materialized.
#[derive(Debug, Clone)]
pub enum SampledChunk {
    /// Features were materialized in memory (Figure 2, scenario 1).
    Materialized(Arc<FeatureChunk>),
    /// Features were evicted but their spill file was readable: used
    /// directly after paying the disk read.
    Spilled(Arc<FeatureChunk>),
    /// Features were evicted (and any spill was absent or unreadable);
    /// re-materialize from this raw chunk (Figure 2, scenario 2).
    NeedsRematerialization(Arc<RawChunk>),
}

impl SampledChunk {
    /// True for the in-memory materialized variant.
    pub fn is_materialized(&self) -> bool {
        matches!(self, SampledChunk::Materialized(_))
    }

    /// The chunk's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            SampledChunk::Materialized(fc) | SampledChunk::Spilled(fc) => fc.timestamp,
            SampledChunk::NeedsRematerialization(raw) => raw.timestamp,
        }
    }
}

/// The data manager: tiered storage plus sampling (see module docs).
///
/// When constructed with a spill directory, the manager owns that directory
/// and removes it on drop.
#[derive(Debug)]
pub struct DataManager {
    store: TieredStore,
    sampler: Sampler,
    owned_spill_dir: Option<std::path::PathBuf>,
    metrics: Metrics,
}

impl DataManager {
    /// Creates a memory-only data manager with the given feature-cache
    /// budget and sampling strategy (evictions recompute, the paper's pure
    /// dynamic materialization).
    pub fn new(budget: StorageBudget, strategy: SamplingStrategy, seed: u64) -> Self {
        Self {
            store: TieredStore::memory_only(budget),
            sampler: Sampler::new(strategy, seed),
            owned_spill_dir: None,
            metrics: Metrics::disabled(),
        }
    }

    /// Creates a data manager whose evictions spill into `spill_dir`, with
    /// all disk I/O consulting `hook` per attempt. The directory is owned:
    /// it is deleted when the manager drops.
    ///
    /// # Errors
    /// I/O errors creating the spill directory.
    pub fn with_spill(
        budget: StorageBudget,
        strategy: SamplingStrategy,
        seed: u64,
        spill_dir: impl Into<std::path::PathBuf>,
        hook: Arc<dyn FaultHook>,
        retry: RetryPolicy,
    ) -> Result<Self, StorageError> {
        let spill_dir = spill_dir.into();
        Ok(Self {
            store: TieredStore::open_with_hook(budget, &spill_dir, hook, retry)?,
            sampler: Sampler::new(strategy, seed),
            owned_spill_dir: Some(spill_dir),
            metrics: Metrics::disabled(),
        })
    }

    /// Records storage behaviour (hits, spills, recomputes, disk latency)
    /// into `metrics`. The default handle is disabled and adds no overhead.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.store.set_metrics(metrics.clone());
        self.metrics = metrics;
    }

    /// Stores an arriving raw chunk (workflow stage 1).
    ///
    /// # Errors
    /// [`StorageError::DuplicateTimestamp`] — the deployment loop assigns
    /// unique timestamps, so a duplicate is a driver bug surfaced as a typed
    /// error rather than a panic.
    pub fn ingest_raw(&mut self, chunk: RawChunk) -> Result<(), StorageError> {
        self.store.put_raw(chunk)
    }

    /// Stores the preprocessed features of a chunk (workflow stage 2),
    /// evicting (and, with a disk tier, spilling) the oldest features if
    /// over budget. Spill-write failures are absorbed by the tiered store —
    /// the chunk stays recomputable — so they are not errors here.
    ///
    /// # Errors
    /// [`StorageError::DuplicateTimestamp`] or
    /// [`StorageError::DanglingRawReference`] (logic errors).
    pub fn store_features(&mut self, chunk: FeatureChunk) -> Result<(), StorageError> {
        self.store.put_feature(chunk)
    }

    /// Resolves the features for one timestamp, with typed failure for a
    /// chunk absent from every tier.
    ///
    /// # Errors
    /// [`StorageError::MissingChunk`] when neither features (memory or
    /// disk) nor raw data exist for `ts`.
    pub fn feature_chunk(&mut self, ts: Timestamp) -> Result<SampledChunk, StorageError> {
        match self.store.lookup(ts) {
            TieredLookup::Memory(fc) => Ok(SampledChunk::Materialized(fc)),
            TieredLookup::Disk(fc) => Ok(SampledChunk::Spilled(Arc::new(fc))),
            TieredLookup::Recompute(raw) => Ok(SampledChunk::NeedsRematerialization(raw)),
            TieredLookup::Unavailable => Err(StorageError::MissingChunk(ts)),
        }
    }

    /// Samples `sample_chunks` chunks for proactive training (workflow
    /// stage 3), resolving each to features (memory or disk) or a raw chunk
    /// for re-materialization (stage 4 decision).
    pub fn sample(&mut self, sample_chunks: usize) -> Vec<SampledChunk> {
        let available = self.store.memory().sampleable_timestamps();
        let picked = self.sampler.sample(&available, sample_chunks);
        // A missing chunk (raw data gone) is ignored by sampling (paper
        // §3.2) — `sampleable_timestamps` should already exclude it, but a
        // concurrent drop is tolerated.
        let sampled: Vec<SampledChunk> = picked
            .into_iter()
            .filter_map(|ts| self.feature_chunk(ts).ok())
            .collect();
        for chunk in &sampled {
            self.metrics
                .lineage(chunk.timestamp().0, LineageEventKind::SampledForTraining);
        }
        sampled
    }

    /// All raw chunks, oldest first — the periodical baseline's retraining
    /// input ("the entire historical data").
    pub fn full_history(&self) -> Vec<Arc<RawChunk>> {
        let store = self.store.memory();
        store
            .sampleable_timestamps()
            .into_iter()
            .filter_map(|ts| store.raw(ts))
            .collect()
    }

    /// Number of chunks available for sampling (the paper's `n`).
    pub fn chunk_count(&self) -> usize {
        self.store.memory().raw_count()
    }

    /// Number of currently materialized feature chunks.
    pub fn materialized_count(&self) -> usize {
        self.store.memory().materialized_count()
    }

    /// Storage behaviour counters (hits/misses/evictions).
    pub fn stats(&self) -> StoreStats {
        self.store.memory().stats()
    }

    /// Tier-level counters (spills, disk hits, recovery fallbacks).
    pub fn tiered_stats(&self) -> TieredStats {
        self.store.stats()
    }

    /// Whether a disk spill tier backs this manager.
    pub fn has_disk(&self) -> bool {
        self.store.has_disk()
    }

    /// The sampling strategy in use.
    pub fn strategy(&self) -> SamplingStrategy {
        self.sampler.strategy()
    }

    /// Replaces the fault hook consulted by the disk tier. Resume swaps a
    /// throwaway replay hook for the real injector after rebuilding state.
    pub fn set_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.store.set_hook(hook);
    }

    /// Overwrites the tier-level counters (checkpoint restore).
    pub fn restore_tiered_stats(&mut self, stats: TieredStats) {
        self.store.restore_stats(stats);
    }

    /// The sampler's raw RNG state, for deployment checkpoints.
    pub fn sampler_rng_state(&self) -> u64 {
        self.sampler.rng_state()
    }

    /// Restores a sampler RNG state captured by
    /// [`DataManager::sampler_rng_state`], so resumed sampling draws the
    /// same sequence the uninterrupted run would have drawn.
    pub fn set_sampler_rng_state(&mut self, state: u64) {
        self.sampler.set_rng_state(state);
    }

    /// Direct store access (failure injection and inspection in tests).
    pub fn store_mut(&mut self) -> &mut ChunkStore {
        self.store.memory_mut()
    }

    /// Direct store access (read-only).
    pub fn store(&self) -> &ChunkStore {
        self.store.memory()
    }
}

impl Drop for DataManager {
    fn drop(&mut self) {
        if let Some(dir) = self.owned_spill_dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_linalg::DenseVector;
    use cdp_storage::{LabeledPoint, Record, Value};

    fn raw(ts: u64) -> RawChunk {
        RawChunk::new(
            Timestamp(ts),
            vec![Record::new(vec![Value::Num(ts as f64)])],
        )
    }

    fn feat(ts: u64) -> FeatureChunk {
        FeatureChunk::new(
            Timestamp(ts),
            Timestamp(ts),
            vec![LabeledPoint::new(
                1.0,
                DenseVector::new(vec![ts as f64]).into(),
            )],
        )
    }

    fn manager(n: u64, m: usize, strategy: SamplingStrategy) -> DataManager {
        let mut dm = DataManager::new(StorageBudget::MaxChunks(m), strategy, 9);
        for t in 0..n {
            dm.ingest_raw(raw(t)).expect("unique timestamps");
            dm.store_features(feat(t)).expect("raw chunk present");
        }
        dm
    }

    #[test]
    fn sample_resolves_materialization_state() {
        let mut dm = manager(20, 5, SamplingStrategy::Uniform);
        let sampled = dm.sample(20); // everything
        assert_eq!(sampled.len(), 20);
        let materialized = sampled.iter().filter(|s| s.is_materialized()).count();
        assert_eq!(materialized, 5);
        for s in &sampled {
            match s {
                SampledChunk::Materialized(fc) => assert!(fc.timestamp.0 >= 15),
                SampledChunk::NeedsRematerialization(r) => assert!(r.timestamp.0 < 15),
                SampledChunk::Spilled(_) => panic!("memory-only manager cannot spill"),
            }
        }
    }

    #[test]
    fn sample_skips_dropped_chunks() {
        let mut dm = manager(10, 10, SamplingStrategy::Uniform);
        dm.store_mut().drop_chunk(Timestamp(3));
        let sampled = dm.sample(10);
        assert_eq!(sampled.len(), 9);
        assert!(sampled.iter().all(|s| s.timestamp() != Timestamp(3)));
    }

    #[test]
    fn full_history_is_ordered() {
        let dm = manager(8, 2, SamplingStrategy::TimeBased);
        let hist = dm.full_history();
        assert_eq!(hist.len(), 8);
        for (i, c) in hist.iter().enumerate() {
            assert_eq!(c.timestamp, Timestamp(i as u64));
        }
    }

    #[test]
    fn stats_reflect_sampling_hits() {
        let mut dm = manager(10, 5, SamplingStrategy::Uniform);
        dm.sample(10);
        let stats = dm.stats();
        assert_eq!(stats.feature_hits, 5);
        assert_eq!(stats.feature_misses, 5);
        assert!((stats.utilization_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spill_backed_manager_serves_evictions_from_disk() {
        let dir = std::env::temp_dir().join(format!("cdp-dm-spill-{}", std::process::id()));
        {
            let mut dm = match DataManager::with_spill(
                StorageBudget::MaxChunks(2),
                SamplingStrategy::Uniform,
                9,
                &dir,
                Arc::new(cdp_faults::NoFaults),
                cdp_faults::RetryPolicy::default(),
            ) {
                Ok(dm) => dm,
                Err(e) => panic!("temp dir is writable: {e}"),
            };
            assert!(dm.has_disk());
            for t in 0..6 {
                dm.ingest_raw(raw(t)).expect("unique timestamps");
                dm.store_features(feat(t)).expect("raw chunk present");
            }
            // Chunks 0..4 were evicted and spilled; they resolve from disk,
            // not recomputation.
            for t in 0..4 {
                match dm.feature_chunk(Timestamp(t)) {
                    Ok(SampledChunk::Spilled(fc)) => assert_eq!(fc.timestamp, Timestamp(t)),
                    other => panic!("chunk {t} must be served from disk, got {other:?}"),
                }
            }
            assert_eq!(dm.tiered_stats().spills, 4);
            assert_eq!(dm.tiered_stats().disk_hits, 4);
            assert!(matches!(
                dm.feature_chunk(Timestamp(99)),
                Err(StorageError::MissingChunk(Timestamp(99)))
            ));
        }
        // Dropping the manager removes its owned spill directory.
        assert!(!dir.exists());
    }

    #[test]
    fn window_sampling_stays_in_window() {
        let mut dm = manager(50, 50, SamplingStrategy::WindowBased { window: 10 });
        for s in dm.sample(5) {
            assert!(s.timestamp().0 >= 40);
        }
    }
}
