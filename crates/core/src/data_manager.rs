//! The data manager (paper §4.2): chunk ingestion, feature storage with
//! dynamic materialization, and sampling for proactive training.

use std::sync::Arc;

use cdp_sampling::{Sampler, SamplingStrategy};
use cdp_storage::{
    ChunkStore, FeatureChunk, FeatureLookup, RawChunk, StorageBudget, StoreStats, Timestamp,
};

/// One sampled chunk, as handed to the pipeline manager: either ready-to-use
/// materialized features or the raw chunk that must be re-materialized.
#[derive(Debug, Clone)]
pub enum SampledChunk {
    /// Features were materialized (Figure 2, scenario 1).
    Materialized(Arc<FeatureChunk>),
    /// Features were evicted; re-materialize from this raw chunk
    /// (Figure 2, scenario 2).
    NeedsRematerialization(Arc<RawChunk>),
}

impl SampledChunk {
    /// True for the materialized variant.
    pub fn is_materialized(&self) -> bool {
        matches!(self, SampledChunk::Materialized(_))
    }

    /// The chunk's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            SampledChunk::Materialized(fc) => fc.timestamp,
            SampledChunk::NeedsRematerialization(raw) => raw.timestamp,
        }
    }
}

/// The data manager: storage plus sampling (see module docs).
#[derive(Debug)]
pub struct DataManager {
    store: ChunkStore,
    sampler: Sampler,
}

impl DataManager {
    /// Creates a data manager with the given feature-cache budget and
    /// sampling strategy.
    pub fn new(budget: StorageBudget, strategy: SamplingStrategy, seed: u64) -> Self {
        Self {
            store: ChunkStore::new(budget),
            sampler: Sampler::new(strategy, seed),
        }
    }

    /// Stores an arriving raw chunk (workflow stage 1).
    ///
    /// # Panics
    /// Panics on duplicate timestamps — the deployment loop assigns unique
    /// ones, so a duplicate is a driver bug.
    pub fn ingest_raw(&mut self, chunk: RawChunk) {
        self.store
            .put_raw(chunk)
            .expect("deployment loop assigns unique timestamps");
    }

    /// Stores the preprocessed features of a chunk (workflow stage 2),
    /// evicting the oldest features if over budget.
    ///
    /// # Panics
    /// Panics when the raw chunk is missing or features already exist.
    pub fn store_features(&mut self, chunk: FeatureChunk) {
        self.store
            .put_feature(chunk)
            .expect("features stored once, after their raw chunk");
    }

    /// Samples `sample_chunks` chunks for proactive training (workflow
    /// stage 3), resolving each to materialized features or a raw chunk for
    /// re-materialization (stage 4 decision).
    pub fn sample(&mut self, sample_chunks: usize) -> Vec<SampledChunk> {
        let available = self.store.sampleable_timestamps();
        let picked = self.sampler.sample(&available, sample_chunks);
        picked
            .into_iter()
            .filter_map(|ts| match self.store.lookup_feature(ts) {
                FeatureLookup::Materialized(fc) => Some(SampledChunk::Materialized(fc)),
                FeatureLookup::Evicted(raw) => Some(SampledChunk::NeedsRematerialization(raw)),
                // Raw data gone: the chunk is ignored by sampling (paper
                // §3.2) — `sampleable_timestamps` should already exclude it,
                // but a concurrent drop is tolerated.
                FeatureLookup::Unavailable => None,
            })
            .collect()
    }

    /// All raw chunks, oldest first — the periodical baseline's retraining
    /// input ("the entire historical data").
    pub fn full_history(&self) -> Vec<Arc<RawChunk>> {
        self.store
            .sampleable_timestamps()
            .into_iter()
            .filter_map(|ts| self.store.raw(ts))
            .collect()
    }

    /// Number of chunks available for sampling (the paper's `n`).
    pub fn chunk_count(&self) -> usize {
        self.store.raw_count()
    }

    /// Number of currently materialized feature chunks.
    pub fn materialized_count(&self) -> usize {
        self.store.materialized_count()
    }

    /// Storage behaviour counters (hits/misses/evictions).
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// The sampling strategy in use.
    pub fn strategy(&self) -> SamplingStrategy {
        self.sampler.strategy()
    }

    /// Direct store access (failure injection and inspection in tests).
    pub fn store_mut(&mut self) -> &mut ChunkStore {
        &mut self.store
    }

    /// Direct store access (read-only).
    pub fn store(&self) -> &ChunkStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_linalg::DenseVector;
    use cdp_storage::{LabeledPoint, Record, Value};

    fn raw(ts: u64) -> RawChunk {
        RawChunk::new(
            Timestamp(ts),
            vec![Record::new(vec![Value::Num(ts as f64)])],
        )
    }

    fn feat(ts: u64) -> FeatureChunk {
        FeatureChunk::new(
            Timestamp(ts),
            Timestamp(ts),
            vec![LabeledPoint::new(
                1.0,
                DenseVector::new(vec![ts as f64]).into(),
            )],
        )
    }

    fn manager(n: u64, m: usize, strategy: SamplingStrategy) -> DataManager {
        let mut dm = DataManager::new(StorageBudget::MaxChunks(m), strategy, 9);
        for t in 0..n {
            dm.ingest_raw(raw(t));
            dm.store_features(feat(t));
        }
        dm
    }

    #[test]
    fn sample_resolves_materialization_state() {
        let mut dm = manager(20, 5, SamplingStrategy::Uniform);
        let sampled = dm.sample(20); // everything
        assert_eq!(sampled.len(), 20);
        let materialized = sampled.iter().filter(|s| s.is_materialized()).count();
        assert_eq!(materialized, 5);
        for s in &sampled {
            match s {
                SampledChunk::Materialized(fc) => assert!(fc.timestamp.0 >= 15),
                SampledChunk::NeedsRematerialization(r) => assert!(r.timestamp.0 < 15),
            }
        }
    }

    #[test]
    fn sample_skips_dropped_chunks() {
        let mut dm = manager(10, 10, SamplingStrategy::Uniform);
        dm.store_mut().drop_chunk(Timestamp(3));
        let sampled = dm.sample(10);
        assert_eq!(sampled.len(), 9);
        assert!(sampled.iter().all(|s| s.timestamp() != Timestamp(3)));
    }

    #[test]
    fn full_history_is_ordered() {
        let dm = manager(8, 2, SamplingStrategy::TimeBased);
        let hist = dm.full_history();
        assert_eq!(hist.len(), 8);
        for (i, c) in hist.iter().enumerate() {
            assert_eq!(c.timestamp, Timestamp(i as u64));
        }
    }

    #[test]
    fn stats_reflect_sampling_hits() {
        let mut dm = manager(10, 5, SamplingStrategy::Uniform);
        dm.sample(10);
        let stats = dm.stats();
        assert_eq!(stats.feature_hits, 5);
        assert_eq!(stats.feature_misses, 5);
        assert!((stats.utilization_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_sampling_stays_in_window() {
        let mut dm = manager(50, 50, SamplingStrategy::WindowBased { window: 10 });
        for s in dm.sample(5) {
            assert!(s.timestamp().0 >= 40);
        }
    }
}
