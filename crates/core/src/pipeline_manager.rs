//! The pipeline manager (paper §4.3): owns the deployed pipeline and model,
//! processes training data and prediction queries, and re-materializes
//! evicted feature chunks.

use std::sync::{Arc, OnceLock};

use cdp_engine::{EngineError, ExecutionEngine};
use cdp_eval::{CostLedger, PrequentialEvaluator};
use cdp_faults::{FaultHook, NoFaults};
use cdp_ml::{FusedStepOutcome, SgdConfig, SgdTrainer, TrainReport};
use cdp_obs::{LineageEventKind, Metrics, SpanContext, Tracer};
use cdp_pipeline::{Pipeline, PipelineCounters};
use cdp_storage::{FeatureChunk, LabeledPoint, RawChunk, RowView};

/// One input to a fused proactive SGD step: either an already-materialized
/// feature chunk (used as-is) or a raw chunk that must be re-materialized —
/// which the fused path streams through a pipeline clone straight into the
/// gradient accumulator, never allocating the intermediate [`FeatureChunk`].
#[derive(Debug, Clone)]
pub enum ProactiveSource {
    /// Feature chunk already available (cache hit or disk spill tier).
    Ready(Arc<FeatureChunk>),
    /// Evicted chunk: only the raw data survives; transform on the fly.
    Raw(Arc<RawChunk>),
}

/// Pipeline + model + online learner, with cost attribution.
///
/// Every raw chunk flows through here exactly as in the paper's workflow:
/// the same deployed pipeline preprocesses training data (with statistic
/// updates) and prediction queries (transform-only), guaranteeing
/// train/serve consistency.
#[derive(Debug)]
pub struct PipelineManager {
    pipeline: Pipeline,
    trainer: SgdTrainer,
    online_batch: usize,
    engine: ExecutionEngine,
    hook: Arc<dyn FaultHook>,
    metrics: Metrics,
    tracer: Tracer,
    trace_scope: Option<SpanContext>,
    counters_base: PipelineCounters,
    points_base: u64,
    steps_base: u64,
    scratch_base: (u64, u64),
}

impl PipelineManager {
    /// Deploys `pipeline` with a fresh model trained by `sgd`.
    pub fn new(pipeline: Pipeline, sgd: &SgdConfig, online_batch: usize) -> Self {
        let dim = pipeline.dim();
        Self {
            trainer: SgdTrainer::new(dim, sgd),
            counters_base: pipeline.counters(),
            pipeline,
            online_batch: online_batch.max(1),
            engine: ExecutionEngine::Sequential,
            hook: Arc::new(NoFaults),
            metrics: Metrics::disabled(),
            tracer: Tracer::disabled(),
            trace_scope: None,
            points_base: 0,
            steps_base: 0,
            scratch_base: (0, 0),
        }
    }

    /// Deploys `pipeline` with an existing trainer (warm starting).
    pub fn with_trainer(pipeline: Pipeline, trainer: SgdTrainer, online_batch: usize) -> Self {
        Self {
            counters_base: pipeline.counters(),
            points_base: trainer.points_seen(),
            steps_base: trainer.steps(),
            scratch_base: trainer.scratch_counters(),
            pipeline,
            trainer,
            online_batch: online_batch.max(1),
            engine: ExecutionEngine::Sequential,
            hook: Arc::new(NoFaults),
            metrics: Metrics::disabled(),
            tracer: Tracer::disabled(),
            trace_scope: None,
        }
    }

    /// Runs every batch operation (initial fit, warm retraining, chunk
    /// re-materialization, sharded gradient steps) on `engine`. All results
    /// and accounted costs are bit-identical across engines; only wall-clock
    /// time changes.
    pub fn with_engine(mut self, engine: ExecutionEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Routes engine-level fault decisions (injected worker panics, delays)
    /// through `hook`. The default hook injects nothing.
    pub fn with_fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.hook = hook;
        self
    }

    /// Records engine behaviour (map calls, task counts, worker restarts,
    /// map latency) for every batch operation into `metrics`. The default
    /// handle is disabled and adds no overhead.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Records causal spans for every batch operation into `tracer`: engine
    /// maps, their per-worker tasks, and sharded gradient steps all become
    /// children of the manager's current trace scope. The default tracer is
    /// disabled and adds no overhead.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Sets the span all subsequent batch operations are parented under
    /// (e.g. the deployment driver's per-chunk span). `None` detaches:
    /// operations become roots of their own traces.
    pub fn set_trace_scope(&mut self, scope: Option<SpanContext>) {
        self.trace_scope = scope;
    }

    /// The execution engine batch operations run on.
    pub fn engine(&self) -> ExecutionEngine {
        self.engine
    }

    /// The deployed pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The deployed trainer (model + optimizer state).
    pub fn trainer(&self) -> &SgdTrainer {
        &self.trainer
    }

    /// Mutable trainer access (the proactive trainer's handle).
    pub fn trainer_mut(&mut self) -> &mut SgdTrainer {
        &mut self.trainer
    }

    /// Snapshots `(pipeline, trainer)` — everything warm starting needs.
    pub fn snapshot(&self) -> (Pipeline, SgdTrainer) {
        (self.pipeline.clone(), self.trainer.clone())
    }

    /// Charges all pipeline work done since the last call to the ledger's
    /// preprocessing phase, and all SGD work to the training phase.
    pub fn drain_charges(&mut self, ledger: &mut CostLedger) {
        let now = self.pipeline.counters();
        ledger.charge_parse(now.parsed_records - self.counters_base.parsed_records);
        ledger.charge_stat_updates(now.update_rows - self.counters_base.update_rows);
        ledger.charge_transforms(now.transform_rows - self.counters_base.transform_rows);
        ledger.charge_encode(now.encoded_points - self.counters_base.encoded_points);
        self.counters_base = now;

        let points = self.trainer.points_seen() - self.points_base;
        let steps = self.trainer.steps() - self.steps_base;
        ledger.charge_sgd_step(points, steps * self.trainer.model().dim() as u64);
        self.points_base = self.trainer.points_seen();
        self.steps_base = self.trainer.steps();

        // Scratch-buffer traffic since the last drain. The reuse/alloc split
        // depends on worker timing (two shards can race an empty pool), so it
        // surfaces as histogram samples — never as counters, which the
        // tracing-is-inert test compares bit-for-bit across runs.
        let (reused, allocated) = self.trainer.scratch_counters();
        let delta_reused = reused.saturating_sub(self.scratch_base.0);
        let delta_allocated = allocated.saturating_sub(self.scratch_base.1);
        if delta_reused > 0 {
            self.metrics
                .histogram("engine.scratch_reuse")
                .observe(delta_reused as f64);
        }
        if delta_allocated > 0 {
            self.metrics
                .histogram("engine.scratch_alloc")
                .observe(delta_allocated as f64);
        }
        self.scratch_base = (reused, allocated);
    }

    /// Initial training (paper §5.1 "Deployment process"): fit the pipeline
    /// statistics over all initial chunks, then train the model to
    /// convergence on the full transformed dataset. Returns the training
    /// report and the transformed feature chunks (so the deployment driver
    /// can seed the data manager's history with them).
    pub fn initial_fit(
        &mut self,
        chunks: &[RawChunk],
        sgd: &SgdConfig,
        ledger: &mut CostLedger,
    ) -> (TrainReport, Vec<FeatureChunk>) {
        let mut feature_chunks = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            self.metrics
                .lineage(chunk.timestamp.0, LineageEventKind::Transform);
            feature_chunks.push(self.pipeline.fit_transform_chunk(chunk));
        }
        let points: Vec<_> = feature_chunks
            .iter()
            .flat_map(FeatureChunk::to_points)
            .collect();
        let report = self.trainer.fit_on_traced(
            &points,
            sgd,
            self.engine,
            &self.metrics,
            &self.tracer,
            self.trace_scope,
        );
        self.drain_charges(ledger);
        (report, feature_chunks)
    }

    /// Warm retraining for the periodical baseline: the pipeline statistics
    /// and model/optimizer state are kept (TFX-style warm starting), but all
    /// historical chunks are re-transformed and the model is trained to
    /// convergence on the full dataset — the expensive path that proactive
    /// training replaces.
    pub fn retrain_warm(
        &mut self,
        history: &[std::sync::Arc<RawChunk>],
        sgd: &SgdConfig,
        ledger: &mut CostLedger,
    ) -> TrainReport {
        self.retrain_warm_on(history, sgd, self.engine, ledger)
    }

    /// [`PipelineManager::retrain_warm`] with the history transformation
    /// executed chunk-parallel on an execution engine (the Spark-style
    /// batch path of §4.5). Accounted cost is engine-independent — parallel
    /// execution reduces wall-clock time, not work.
    pub fn retrain_warm_on(
        &mut self,
        history: &[std::sync::Arc<RawChunk>],
        sgd: &SgdConfig,
        engine: ExecutionEngine,
        ledger: &mut CostLedger,
    ) -> TrainReport {
        let points = match engine {
            ExecutionEngine::Sequential => {
                let mut points = Vec::new();
                for chunk in history {
                    points.extend(self.pipeline.transform_chunk(chunk).to_points());
                }
                points
            }
            ExecutionEngine::Threaded { workers } => {
                // Partition into one group per worker; each group runs on a
                // clone of the deployed pipeline (transform-only, so the
                // clones never diverge from the original's statistics).
                let groups: Vec<Vec<std::sync::Arc<RawChunk>>> = history
                    .chunks(history.len().div_ceil(workers.max(1)).max(1))
                    .map(<[std::sync::Arc<RawChunk>]>::to_vec)
                    .collect();
                let template = self.pipeline.clone();
                let results = engine.map_traced(
                    groups,
                    |group| {
                        let mut local = template.clone();
                        local.reset_counters();
                        let mut points = Vec::new();
                        for chunk in &group {
                            points.extend(local.transform_chunk(chunk).to_points());
                        }
                        (points, local.counters())
                    },
                    &self.metrics,
                    &self.tracer,
                    self.trace_scope,
                );
                let mut points = Vec::new();
                for (group_points, counters) in results {
                    points.extend(group_points);
                    self.pipeline.absorb_counters(counters);
                }
                points
            }
        };
        let report = self.trainer.fit_on_traced(
            &points,
            sgd,
            engine,
            &self.metrics,
            &self.tracer,
            self.trace_scope,
        );
        self.drain_charges(ledger);
        report
    }

    /// The full online path for one arriving chunk (workflow stages 2 + 5a):
    ///
    /// 1. preprocess through the pipeline, updating every component's
    ///    statistics (online statistics computation);
    /// 2. *prequential evaluation*: predict each example with the current
    ///    model before training on it;
    /// 3. online learning: one pass of mini-batch SGD over the chunk.
    ///
    /// Returns the feature chunk for the data manager to store.
    pub fn process_online_chunk(
        &mut self,
        raw: &RawChunk,
        evaluator: &mut PrequentialEvaluator,
        ledger: &mut CostLedger,
    ) -> FeatureChunk {
        self.metrics
            .lineage(raw.timestamp.0, LineageEventKind::Transform);
        let fc = self.pipeline.fit_transform_chunk(raw);
        // Test-then-train: predictions are made before the online update.
        // Rows stream out of the columnar slab zero-copy in both loops.
        for row in fc.rows() {
            let prediction = self.trainer.model_mut().margin_row(row);
            evaluator.observe(prediction, row.label());
        }
        ledger.charge_predictions(fc.len() as u64);
        let rows: Vec<RowView<'_>> = fc.rows().collect();
        self.trainer
            .online_pass_rows(&rows, self.online_batch, self.engine);
        self.drain_charges(ledger);
        fc
    }

    /// Answers prediction queries from a chunk without any training or
    /// statistic updates (the pure serving path).
    pub fn answer_queries(
        &mut self,
        raw: &RawChunk,
        evaluator: &mut PrequentialEvaluator,
        ledger: &mut CostLedger,
    ) {
        let fc = self.pipeline.transform_chunk(raw);
        for row in fc.rows() {
            let prediction = self.trainer.model_mut().margin_row(row);
            evaluator.observe(prediction, row.label());
        }
        ledger.charge_predictions(fc.len() as u64);
        self.drain_charges(ledger);
    }

    /// Re-materializes an evicted feature chunk (workflow stage 4):
    /// transform-only, statistics untouched.
    pub fn rematerialize(&mut self, raw: &RawChunk, ledger: &mut CostLedger) -> FeatureChunk {
        let fc = self.pipeline.transform_chunk(raw);
        self.drain_charges(ledger);
        fc
    }

    /// Re-materializes a batch of evicted chunks in one engine-parallel map.
    ///
    /// Each chunk is transformed on its own clone of the deployed pipeline
    /// (transform-only, so the clones never diverge from the deployed
    /// statistics); counter deltas are absorbed in input order, making the
    /// accounted cost and the returned chunks independent of the engine and
    /// of worker scheduling. Output order matches input order.
    pub fn rematerialize_many(
        &mut self,
        raws: &[std::sync::Arc<RawChunk>],
        ledger: &mut CostLedger,
    ) -> Vec<FeatureChunk> {
        match self.try_rematerialize_many(raws, ledger) {
            Ok(out) => out,
            Err(e) => panic!("rematerialization failed: {e}"),
        }
    }

    /// [`PipelineManager::rematerialize_many`] with engine faults surfaced
    /// as typed errors. Injected worker panics within the restart budget are
    /// recovered transparently (results stay bit-identical); an exhausted
    /// restart budget or a genuine worker panic returns
    /// [`EngineError::WorkerPanic`].
    ///
    /// # Errors
    /// [`EngineError::WorkerPanic`] when a worker dies beyond recovery.
    pub fn try_rematerialize_many(
        &mut self,
        raws: &[std::sync::Arc<RawChunk>],
        ledger: &mut CostLedger,
    ) -> Result<Vec<FeatureChunk>, EngineError> {
        // Early return BEFORE drawing a worker order: the fault epoch
        // sequence must depend only on deployment logic, not engine calls
        // that would be no-ops.
        if raws.is_empty() {
            return Ok(Vec::new());
        }
        let template = self.pipeline.clone();
        let hook = Arc::clone(&self.hook);
        // Borrowed-slice map: no clone of the `Arc<RawChunk>` handles into a
        // scratch `Vec` — workers read the caller's slice directly.
        let results = self.engine.try_map_slice_with_hook_traced(
            raws,
            |raw| {
                let mut local = template.clone();
                local.reset_counters();
                let fc = local.transform_chunk(raw);
                (fc, local.counters())
            },
            &*hook,
            &self.metrics,
            &self.tracer,
            self.trace_scope,
        )?;
        let mut out = Vec::with_capacity(results.len());
        for (fc, counters) in results {
            self.pipeline.absorb_counters(counters);
            out.push(fc);
        }
        self.drain_charges(ledger);
        Ok(out)
    }

    /// One proactive mini-batch SGD step over `batch`, parented under the
    /// manager's current trace scope (the deployment driver's
    /// `proactive.fire` span) so sharded gradient tasks on worker threads
    /// join the deployment's span tree.
    pub fn proactive_step(&mut self, batch: Vec<&LabeledPoint>) -> Option<f64> {
        self.trainer.step_on_traced(
            batch,
            self.engine,
            &self.metrics,
            &self.tracer,
            self.trace_scope,
        )
    }

    /// One proactive mini-batch SGD step with the transform **fused** into
    /// the gradient pass: each `Raw` source streams through a clone of the
    /// deployed pipeline directly into a per-source gradient accumulator
    /// ([`SgdTrainer::try_step_fused_on`]), so no intermediate
    /// [`FeatureChunk`] or union batch buffer is ever materialized.
    ///
    /// Results are deterministic: gradients reduce in fixed tree order keyed
    /// by source index, and pipeline counter deltas are absorbed in source
    /// order, so the model update and the accounted cost depend only on the
    /// sources — never on the engine, worker count, or steal schedule.
    ///
    /// # Errors
    /// [`EngineError::WorkerPanic`] when a worker dies beyond the engine's
    /// restart budget; the model is untouched in that case.
    pub fn try_proactive_step_fused(
        &mut self,
        sources: &[ProactiveSource],
        ledger: &mut CostLedger,
    ) -> Result<FusedStepOutcome, EngineError> {
        // Early return BEFORE drawing a worker order: the fault epoch
        // sequence must depend only on deployment logic, not engine calls
        // that would be no-ops.
        if sources.is_empty() {
            return Ok(FusedStepOutcome {
                loss: None,
                points: 0,
            });
        }
        let template = self.pipeline.clone();
        // Worker-fault orders are part of the deployment's deterministic
        // fault-epoch sequence, which is defined over *re-materializing*
        // engine calls (the fault site the injector models). A fused step
        // whose sources are all `Ready` does no pipeline work, so it must
        // not consume an epoch — exactly as the pre-fused path, where only
        // `try_rematerialize_many` consulted the hook.
        let rematerializes = sources.iter().any(|s| matches!(s, ProactiveSource::Raw(_)));
        let hook: Arc<dyn FaultHook> = if rematerializes {
            Arc::clone(&self.hook)
        } else {
            Arc::new(NoFaults)
        };
        // Transform work happens on pipeline clones inside engine tasks;
        // their counters land here (one write per source, re-runs after an
        // injected panic cannot double-count) and are absorbed in source
        // order after the step.
        let counter_slots: Vec<OnceLock<PipelineCounters>> =
            sources.iter().map(|_| OnceLock::new()).collect();
        let outcome = self.trainer.try_step_fused_on(
            sources.len(),
            |i, sink| match &sources[i] {
                ProactiveSource::Ready(fc) => {
                    // Already-materialized chunks stream straight out of
                    // their columnar slab — no per-row reconstruction.
                    for row in fc.rows() {
                        sink(row);
                    }
                }
                ProactiveSource::Raw(raw) => {
                    let mut local = template.clone();
                    local.reset_counters();
                    local.transform_chunk_fold(raw, &mut |p| sink(RowView::Point(p)));
                    let _ = counter_slots[i].set(local.counters());
                }
            },
            self.engine,
            &*hook,
            &self.metrics,
            &self.tracer,
            self.trace_scope,
        )?;
        for slot in counter_slots {
            if let Some(counters) = slot.into_inner() {
                self.pipeline.absorb_counters(counters);
            }
        }
        self.drain_charges(ledger);
        Ok(outcome)
    }

    /// Simulates recomputing component statistics by an extra scan over the
    /// chunk — the cost the *NoOptimization* baseline of Experiment 3 pays
    /// because it lacks online statistics computation. Only cost is charged;
    /// the deployed statistics are not corrupted.
    pub fn charge_statistics_recomputation(&self, raw: &RawChunk, ledger: &mut CostLedger) {
        let rows = raw.len() as u64;
        // One parse plus one statistics pass per stateful component.
        ledger.charge_parse(rows);
        let stateful = 2u64; // imputer/scaler-class components in both pipelines
        ledger.charge_stat_updates(rows * stateful);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_eval::{CostModel, ErrorMetric, Phase};
    use cdp_ml::LossKind;
    use cdp_pipeline::encode::DenseEncoder;
    use cdp_pipeline::parser::SchemaParser;
    use cdp_pipeline::scale::StandardScaler;
    use cdp_pipeline::PipelineBuilder;
    use cdp_storage::{Record, Schema, Timestamp, Value};

    fn pipeline() -> Pipeline {
        let schema = Schema::new(["y", "x"]);
        PipelineBuilder::new(SchemaParser::new(schema, "y", &["x"], None))
            .add(StandardScaler::new())
            .encoder(DenseEncoder::new(1))
            .unwrap()
    }

    fn chunk(ts: u64, rows: &[(f64, f64)]) -> RawChunk {
        RawChunk::new(
            Timestamp(ts),
            rows.iter()
                .map(|&(y, x)| Record::new(vec![Value::Num(y), Value::Num(x)]))
                .collect(),
        )
    }

    fn sgd() -> SgdConfig {
        SgdConfig::for_loss(LossKind::Squared)
    }

    #[test]
    fn online_chunk_tests_then_trains() {
        let mut pm = PipelineManager::new(pipeline(), &sgd(), 8);
        let mut ev = PrequentialEvaluator::new(ErrorMetric::Rmsle, 0);
        let mut ledger = CostLedger::new(CostModel::commodity());
        let fc =
            pm.process_online_chunk(&chunk(0, &[(1.0, 2.0), (2.0, 3.0)]), &mut ev, &mut ledger);
        assert_eq!(fc.len(), 2);
        assert_eq!(ev.count(), 2);
        // With a zero-initialized model, first predictions are 0 ⇒ error > 0.
        assert!(ev.error() > 0.0);
        assert!(pm.trainer().steps() > 0);
        assert!(ledger.phase(Phase::Prediction) > 0.0);
        assert!(ledger.phase(Phase::Preprocessing) > 0.0);
        assert!(ledger.phase(Phase::Training) > 0.0);
    }

    #[test]
    fn rematerialize_equals_stored_features() {
        let mut pm = PipelineManager::new(pipeline(), &sgd(), 8);
        let mut ev = PrequentialEvaluator::new(ErrorMetric::Rmsle, 0);
        let mut ledger = CostLedger::default();
        let raw = chunk(0, &[(1.0, 2.0), (2.0, 3.0)]);
        let stored = pm.process_online_chunk(&raw, &mut ev, &mut ledger);
        let rematerialized = pm.rematerialize(&raw, &mut ledger);
        assert_eq!(stored, rematerialized);
    }

    #[test]
    fn rematerialize_many_matches_per_chunk_path_on_every_engine() {
        let mut ev = PrequentialEvaluator::new(ErrorMetric::Rmsle, 0);
        let raws: Vec<std::sync::Arc<RawChunk>> = (0..7)
            .map(|t| {
                std::sync::Arc::new(chunk(
                    t,
                    &[(t as f64, t as f64 * 0.25), (t as f64 + 2.0, t as f64)],
                ))
            })
            .collect();

        let mut base_pm = PipelineManager::new(pipeline(), &sgd(), 8);
        let mut base_ledger = CostLedger::new(CostModel::commodity());
        base_pm.process_online_chunk(&raws[0], &mut ev, &mut base_ledger);
        let expected: Vec<FeatureChunk> = raws
            .iter()
            .map(|raw| base_pm.rematerialize(raw, &mut base_ledger))
            .collect();

        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::Threaded { workers: 3 },
        ] {
            let mut pm = PipelineManager::new(pipeline(), &sgd(), 8).with_engine(engine);
            let mut ledger = CostLedger::new(CostModel::commodity());
            pm.process_online_chunk(&raws[0], &mut ev, &mut ledger);
            let batched = pm.rematerialize_many(&raws, &mut ledger);
            assert_eq!(batched, expected, "engine {}", engine.name());
            assert!(
                (ledger.total() - base_ledger.total()).abs() < 1e-12,
                "accounted cost must be engine-independent"
            );
        }
    }

    #[test]
    fn answer_queries_does_not_train() {
        let mut pm = PipelineManager::new(pipeline(), &sgd(), 8);
        let mut ev = PrequentialEvaluator::new(ErrorMetric::Rmsle, 0);
        let mut ledger = CostLedger::default();
        pm.answer_queries(&chunk(0, &[(1.0, 2.0)]), &mut ev, &mut ledger);
        assert_eq!(ev.count(), 1);
        assert_eq!(pm.trainer().steps(), 0);
        assert_eq!(ledger.phase(Phase::Training), 0.0);
    }

    #[test]
    fn initial_fit_reduces_loss() {
        let mut pm = PipelineManager::new(pipeline(), &sgd(), 8);
        let mut ledger = CostLedger::default();
        let chunks: Vec<RawChunk> = (0..5)
            .map(|t| {
                chunk(
                    t,
                    &[
                        (2.0 * t as f64, t as f64),
                        (2.0 * t as f64 + 1.0, t as f64 + 0.5),
                    ],
                )
            })
            .collect();
        let (report, fcs) = pm.initial_fit(&chunks, &sgd(), &mut ledger);
        assert!(report.final_loss <= report.initial_loss);
        assert!(ledger.total() > 0.0);
        assert_eq!(fcs.len(), 5);
        assert!(fcs.iter().all(|fc| fc.len() == 2));
    }

    #[test]
    fn drain_charges_is_incremental() {
        let mut pm = PipelineManager::new(pipeline(), &sgd(), 8);
        let mut ev = PrequentialEvaluator::new(ErrorMetric::Rmsle, 0);
        let mut ledger = CostLedger::default();
        pm.process_online_chunk(&chunk(0, &[(1.0, 2.0)]), &mut ev, &mut ledger);
        let after_first = ledger.total();
        // Draining again without new work must charge nothing.
        pm.drain_charges(&mut ledger);
        assert_eq!(ledger.total(), after_first);
    }

    #[test]
    fn parallel_retraining_matches_sequential() {
        // The threaded engine must produce the exact same model and the
        // exact same accounted cost as the sequential path.
        let history: Vec<std::sync::Arc<RawChunk>> = (0..12)
            .map(|t| {
                std::sync::Arc::new(chunk(
                    t,
                    &[(t as f64, t as f64 * 0.5), (t as f64 + 1.0, t as f64)],
                ))
            })
            .collect();
        let mut ev = PrequentialEvaluator::new(ErrorMetric::Rmsle, 0);

        let mut seq_pm = PipelineManager::new(pipeline(), &sgd(), 8);
        let mut seq_ledger = CostLedger::default();
        seq_pm.process_online_chunk(&history[0], &mut ev, &mut seq_ledger);
        let mut par_pm = PipelineManager::new(pipeline(), &sgd(), 8);
        let mut par_ledger = CostLedger::default();
        par_pm.process_online_chunk(&history[0], &mut ev, &mut par_ledger);

        let seq_report = seq_pm.retrain_warm_on(
            &history,
            &sgd(),
            ExecutionEngine::Sequential,
            &mut seq_ledger,
        );
        let par_report = par_pm.retrain_warm_on(
            &history,
            &sgd(),
            ExecutionEngine::Threaded { workers: 4 },
            &mut par_ledger,
        );
        assert_eq!(
            seq_pm.trainer().model().weights(),
            par_pm.trainer().model().weights()
        );
        assert_eq!(seq_report.steps, par_report.steps);
        assert!((seq_ledger.total() - par_ledger.total()).abs() < 1e-12);
    }

    #[test]
    fn warm_start_preserves_model() {
        let mut pm = PipelineManager::new(pipeline(), &sgd(), 8);
        let mut ev = PrequentialEvaluator::new(ErrorMetric::Rmsle, 0);
        let mut ledger = CostLedger::default();
        pm.process_online_chunk(&chunk(0, &[(1.0, 2.0), (3.0, 5.0)]), &mut ev, &mut ledger);
        let (pipe, trainer) = pm.snapshot();
        let warm = PipelineManager::with_trainer(pipe, trainer, 8);
        assert_eq!(
            warm.trainer().model().weights(),
            pm.trainer().model().weights()
        );
    }
}
