//! The continuous-deployment platform (the paper's primary contribution).
//!
//! This crate assembles the substrates into the architecture of Figure 3:
//!
//! * [`data_manager`] — discretized chunk storage, dynamic materialization,
//!   and sampling (wraps `cdp-storage` + `cdp-sampling`);
//! * [`pipeline_manager`] — owns the deployed pipeline and model; processes
//!   training chunks (online statistics computation + online learning),
//!   answers prediction queries, re-materializes evicted feature chunks;
//! * [`scheduler`] — decides *when* proactive training runs: static
//!   intervals or the dynamic rule `T' = S·T·pr·pl` (Eq. 6);
//! * [`proactive`] — the proactive trainer: executes single mini-batch SGD
//!   iterations over sampled historical data;
//! * [`deployment`] — end-to-end drivers for the three approaches compared
//!   in the paper's evaluation: **Online**, **Periodical** (with TFX-style
//!   warm starting), and **Continuous** (this paper);
//! * [`presets`] — the two evaluation pipelines (URL and Taxi) bound to the
//!   synthetic streams;
//! * [`tuning`] — the hyperparameter grid search of Experiment 2;
//! * [`report`] — plain-text table / CSV helpers for the experiment
//!   binaries.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod data_manager;
pub mod deployment;
pub mod pipeline_manager;
pub mod presets;
pub mod proactive;
pub mod report;
pub mod scheduler;
pub mod serving;
pub mod tuning;

pub use checkpoint::DeploymentCheckpoint;
pub use data_manager::{DataManager, SampledChunk};
pub use deployment::{
    resume_deployment, run_deployment, try_resume_deployment, try_resume_deployment_observed,
    try_resume_deployment_traced, try_run_deployment, try_run_deployment_observed,
    try_run_deployment_traced, CheckpointConfig, CheckpointStats, DeploymentConfig,
    DeploymentError, DeploymentMode, DeploymentResult, OptimizationConfig, RecorderConfig,
    TelemetryConfig,
};
pub use pipeline_manager::PipelineManager;
pub use presets::{taxi_spec, url_spec, DeploymentSpec, SpecScale};
pub use proactive::ProactiveTrainer;
pub use scheduler::{Scheduler, SchedulerContext};
pub use serving::{
    weights_fingerprint, BatchConfig, FlusherHandle, ModelServer, Prediction, QueueOverflow,
    RouterConfig, ServerBuilder, ServingRouter, ServingSnapshot, Ticket,
};
