//! Hyperparameter tuning (Experiment 2, Table 3 and Figure 5).
//!
//! The paper grid-searches the learning-rate adaptation technique
//! (Adam / RMSProp / AdaDelta) against the regularization parameter
//! (1e-2 / 1e-3 / 1e-4) on the *initial* data, and then shows that the best
//! initial configuration is also the best *deployed* configuration — which
//! is what lets the proactive trainer reuse the initial tuning.

use cdp_datagen::{ChunkStream, Truncated};
use cdp_eval::{CostLedger, PrequentialEvaluator};
use cdp_ml::loss::Loss;
use cdp_ml::{OptimizerKind, Regularizer, SgdConfig};
use cdp_sampling::SamplingStrategy;

use crate::deployment::{run_deployment, DeploymentConfig};
use crate::pipeline_manager::PipelineManager;
use crate::presets::DeploymentSpec;

/// One cell of the tuning grid.
#[derive(Debug, Clone)]
pub struct TuningCell {
    /// The adaptation technique.
    pub optimizer: OptimizerKind,
    /// The regularization strength λ (an L2 penalty, as in MLlib).
    pub lambda: f64,
    /// Held-out error after initial training (Table 3).
    pub initial_error: f64,
    /// Held-out mean data loss after initial training. At repository scale
    /// the held-out *error rate* is quantized by the evaluation-set size, so
    /// the loss provides the resolution the paper's millions-of-rows grid
    /// has natively; ranking uses error first, loss as the tiebreaker.
    pub initial_loss: f64,
    /// Prequential error after deploying this configuration on a slice of
    /// the stream (Figure 5); `None` until `deployed_grid` fills it.
    pub deployed_error: Option<f64>,
}

impl TuningCell {
    /// Ranking key: held-out error, then held-out loss.
    fn rank_key(&self) -> (f64, f64) {
        (self.initial_error, self.initial_loss)
    }
}

/// The paper's grid: {Adam, RMSProp, AdaDelta} × {1e-2, 1e-3, 1e-4}.
pub fn paper_grid(base_eta: f64) -> Vec<(OptimizerKind, f64)> {
    let optimizers = [
        OptimizerKind::adam(base_eta),
        OptimizerKind::rmsprop(base_eta),
        OptimizerKind::adadelta(),
    ];
    let lambdas = [1e-2, 1e-3, 1e-4];
    optimizers
        .iter()
        .flat_map(|&o| lambdas.iter().map(move |&l| (o, l)))
        .collect()
}

fn sgd_for(spec: &DeploymentSpec, optimizer: OptimizerKind, lambda: f64) -> SgdConfig {
    SgdConfig {
        optimizer,
        regularizer: Regularizer::L2(lambda),
        ..spec.sgd
    }
}

/// Table 3: for every grid cell, train on ~80% of the initial chunks and
/// measure held-out error on the remaining ~20%.
pub fn initial_grid(
    stream: &dyn ChunkStream,
    spec: &DeploymentSpec,
    grid: &[(OptimizerKind, f64)],
) -> Vec<TuningCell> {
    let initial = stream.initial();
    let split = (initial.len() * 4 / 5)
        .max(1)
        .min(initial.len().saturating_sub(1).max(1));
    let (train, eval) = initial.split_at(split);

    grid.iter()
        .map(|&(optimizer, lambda)| {
            let sgd = sgd_for(spec, optimizer, lambda);
            let mut pm = PipelineManager::new(spec.build_pipeline(), &sgd, spec.online_batch);
            let mut ledger = CostLedger::default();
            pm.initial_fit(train, &sgd, &mut ledger);
            let mut evaluator = PrequentialEvaluator::new(spec.metric, 0);
            let loss = sgd.loss;
            let mut loss_sum = 0.0;
            let mut examples = 0u64;
            for chunk in eval {
                let fc = pm.rematerialize(chunk, &mut ledger);
                for row in fc.rows() {
                    // Holdout rows come from the deployed pipeline, so they
                    // never exceed the model width and the padded dot is the
                    // exact one.
                    let z = row.dot_padded(pm.trainer().model().weights());
                    evaluator.observe(z, row.label());
                    loss_sum += loss.value(z, row.label());
                    examples += 1;
                }
            }
            TuningCell {
                optimizer,
                lambda,
                initial_error: evaluator.error(),
                initial_loss: if examples > 0 {
                    loss_sum / examples as f64
                } else {
                    0.0
                },
                deployed_error: None,
            }
        })
        .collect()
}

/// Figure 5: deploy each cell's configuration (continuous mode, uniform
/// sampling) over `deploy_fraction` of the deployment stream and record the
/// prequential error.
pub fn deployed_grid<S: ChunkStream + Clone>(
    stream: &S,
    spec: &DeploymentSpec,
    cells: &mut [TuningCell],
    deploy_fraction: f64,
) {
    let deploy_len = stream.total_chunks() - stream.initial_chunks();
    let keep = ((deploy_len as f64 * deploy_fraction) as usize).max(1);
    let truncated = Truncated::new(stream.clone(), stream.initial_chunks() + keep);
    for cell in cells.iter_mut() {
        let tuned = spec.with_sgd(sgd_for(spec, cell.optimizer, cell.lambda));
        let config = DeploymentConfig::continuous(
            tuned.proactive_every,
            tuned.sample_chunks,
            SamplingStrategy::Uniform,
        );
        let result = run_deployment(&truncated, &tuned, &config);
        cell.deployed_error = Some(result.final_error);
    }
}

/// The best cell by held-out error, loss as tiebreaker.
pub fn best_initial(cells: &[TuningCell]) -> Option<&TuningCell> {
    cells.iter().min_by(|a, b| {
        a.rank_key()
            .partial_cmp(&b.rank_key())
            .expect("finite errors")
    })
}

/// For each adaptation technique, the cell with the lowest initial error —
/// the subset Figure 5 displays.
pub fn best_per_optimizer(cells: &[TuningCell]) -> Vec<&TuningCell> {
    let mut out: Vec<&TuningCell> = Vec::new();
    for cell in cells {
        match out
            .iter_mut()
            .find(|c| c.optimizer.name() == cell.optimizer.name())
        {
            Some(existing) => {
                if cell.rank_key() < existing.rank_key() {
                    *existing = cell;
                }
            }
            None => out.push(cell),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{url_spec, SpecScale};

    #[test]
    fn grid_has_nine_cells() {
        assert_eq!(paper_grid(0.01).len(), 9);
    }

    #[test]
    fn initial_grid_produces_finite_errors() {
        let (stream, spec) = url_spec(SpecScale::Tiny);
        let grid = vec![
            (OptimizerKind::adam(0.01), 1e-3),
            (OptimizerKind::adadelta(), 1e-2),
        ];
        let cells = initial_grid(&stream, &spec, &grid);
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert!(c.initial_error.is_finite());
            assert!((0.0..=1.0).contains(&c.initial_error));
            assert!(c.deployed_error.is_none());
        }
    }

    #[test]
    fn deployed_grid_fills_errors() {
        let (stream, spec) = url_spec(SpecScale::Tiny);
        let grid = vec![(OptimizerKind::adam(0.01), 1e-3)];
        let mut cells = initial_grid(&stream, &spec, &grid);
        deployed_grid(&stream, &spec, &mut cells, 0.5);
        assert!(cells[0].deployed_error.is_some());
    }

    #[test]
    fn best_helpers() {
        let mk = |name_eta: f64, lambda: f64, err: f64| TuningCell {
            optimizer: OptimizerKind::adam(name_eta),
            lambda,
            initial_error: err,
            initial_loss: err,
            deployed_error: None,
        };
        let cells = vec![
            mk(0.01, 1e-2, 0.3),
            mk(0.01, 1e-3, 0.1),
            mk(0.01, 1e-4, 0.2),
        ];
        assert_eq!(best_initial(&cells).unwrap().lambda, 1e-3);
        // Same optimizer everywhere ⇒ one best-per-optimizer entry.
        assert_eq!(best_per_optimizer(&cells).len(), 1);
        assert_eq!(best_per_optimizer(&cells)[0].lambda, 1e-3);
    }
}
