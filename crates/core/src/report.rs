//! Plain-text tables and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV to `path` (creating parent directories).
    ///
    /// # Errors
    /// I/O errors creating directories or writing the file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.write_csv_with_meta(path, &[])
    }

    /// [`Table::write_csv`] with a leading `# key: value` comment block
    /// (provenance metadata, e.g. which execution engine produced the file).
    ///
    /// # Errors
    /// I/O errors creating directories or writing the file.
    pub fn write_csv_with_meta(
        &self,
        path: impl AsRef<Path>,
        meta: &[(&str, &str)],
    ) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut content = String::new();
        for (key, value) in meta {
            let _ = writeln!(content, "# {key}: {value}");
        }
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        content.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        content.push('\n');
        for row in &self.rows {
            content.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            content.push('\n');
        }
        std::fs::write(path, content)
    }
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats seconds as `1.23 s` / `4.5 min` as appropriate.
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 120.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.2} s")
    } else {
        format!("{:.1} ms", secs * 1000.0)
    }
}

/// Renders a `(x, y)` curve as a coarse ASCII sparkline of `buckets`
/// segments — a quick visual for the figure regenerators.
pub fn sparkline(curve: &[(u64, f64)], buckets: usize) -> String {
    if curve.is_empty() || buckets == 0 {
        return String::new();
    }
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let step = (curve.len() as f64 / buckets as f64).max(1.0);
    let sampled: Vec<f64> = (0..buckets.min(curve.len()))
        .map(|b| curve[((b as f64 * step) as usize).min(curve.len() - 1)].1)
        .collect();
    let (min, max) = sampled
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (max - min).max(1e-12);
    sampled
        .iter()
        .map(|&v| GLYPHS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("alpha"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["x"]);
        t.row(["a,b"]).row(["say \"hi\""]);
        let dir = std::env::temp_dir().join(format!("cdp-report-{}", std::process::id()));
        let path = dir.join("out.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"a,b\""));
        assert!(content.contains("\"say \"\"hi\"\"\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_secs(0.5), "500.0 ms");
        assert_eq!(fmt_secs(5.0), "5.00 s");
        assert_eq!(fmt_secs(300.0), "5.0 min");
    }

    #[test]
    fn sparkline_shape() {
        let curve: Vec<(u64, f64)> = (0..100).map(|i| (i, i as f64)).collect();
        let s = sparkline(&curve, 10);
        assert_eq!(s.chars().count(), 10);
        let first = s.chars().next().unwrap();
        let last = s.chars().next_back().unwrap();
        assert_eq!(first, '▁');
        assert_eq!(last, '█');
        assert!(sparkline(&[], 5).is_empty());
    }
}
