//! End-to-end deployment drivers for the three approaches of Experiment 1.
//!
//! All three share the same arrival loop — every deployment chunk is first
//! used for prequential evaluation, then for online learning — and differ
//! only in how they keep the model fresh:
//!
//! * **Online**: nothing beyond the per-chunk online SGD pass;
//! * **Periodical**: a full retraining over the entire history every
//!   `retrain_every` chunks, warm-started TFX-style (pipeline statistics,
//!   model weights, and optimizer state are reused) unless configured cold;
//! * **Continuous** (the paper): proactive training — a scheduled single
//!   mini-batch SGD iteration over a sample of the history, served from the
//!   materialized-feature cache when possible.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cdp_datagen::ChunkStream;
use cdp_engine::{EngineError, ExecutionEngine};
use cdp_eval::cost::Stopwatch;
use cdp_eval::prequential::average_of_curve;
use cdp_eval::{CostLedger, CostModel, Phase, PrequentialEvaluator};
use cdp_faults::{
    CrashSite, FaultHook, FaultInjector, FaultPlan, FaultStats, NoFaults, RetryPolicy,
};
use cdp_linalg::DenseVector;
use cdp_ml::{LinearModel, OptimizerState, SgdTrainer, TrainReport};
use cdp_obs::{
    Alert, AlertMonitor, Clock, FlightRecorder, Metrics, MetricsSnapshot, SloMonitor,
    TelemetryStore, TraceSnapshot, TraceSpan, Tracer, VirtualClock, DEFAULT_SERIES_CAPACITY,
};
use cdp_pipeline::drift::{DriftDetector, DriftStatus};
use cdp_pipeline::PipelineError;
use cdp_sampling::{mu_uniform, mu_window, SamplingStrategy};
use cdp_storage::{
    CheckpointDir, RawChunk, StorageBudget, StorageError, StoreStats, TieredStats, WalDir,
    WalOptions, WalStats, WalWriter,
};
use serde::{Deserialize, Serialize};

use crate::checkpoint::DeploymentCheckpoint;
use crate::data_manager::DataManager;
use crate::pipeline_manager::PipelineManager;
use crate::presets::DeploymentSpec;
use crate::proactive::ProactiveTrainer;
use crate::scheduler::{Scheduler, SchedulerContext};
use crate::serving::{weights_fingerprint, ModelServer};

/// How the deployed model is kept fresh.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeploymentMode {
    /// Online learning only.
    Online,
    /// Online learning plus periodical full retraining.
    Periodical {
        /// Chunks between retrainings (URL: every 10 days; Taxi: monthly).
        retrain_every: usize,
        /// Reuse pipeline statistics, weights, and optimizer state
        /// (TFX-style). The paper's baseline always warm-starts; `false` is
        /// the cold-restart ablation.
        warm_start: bool,
    },
    /// Online learning plus proactive training (this paper).
    Continuous {
        /// When proactive training fires.
        scheduler: Scheduler,
        /// Chunks sampled per proactive-training instance.
        sample_chunks: usize,
        /// Sampling strategy over the history.
        strategy: SamplingStrategy,
    },
}

impl DeploymentMode {
    /// Short display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            DeploymentMode::Online => "Online",
            DeploymentMode::Periodical { .. } => "Periodical",
            DeploymentMode::Continuous { .. } => "Continuous",
        }
    }
}

/// The platform optimizations of Experiment 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizationConfig {
    /// Online statistics computation (§3.1). When disabled, proactive
    /// training pays a statistics-recomputation scan and raw-data disk read
    /// per sampled chunk (the NoOptimization baseline).
    pub online_stats: bool,
    /// Materialized-feature cache budget (§3.2). `MaxChunks(m)` yields a
    /// materialization rate of `m/n`.
    pub budget: StorageBudget,
}

impl Default for OptimizationConfig {
    fn default() -> Self {
        Self {
            online_stats: true,
            budget: StorageBudget::Unbounded,
        }
    }
}

/// Crash-consistent checkpointing for a deployment run.
///
/// When set on [`DeploymentConfig::checkpoint`], the loop durably writes a
/// [`DeploymentCheckpoint`] every `every_chunks` chunks (and once more at
/// shutdown if chunks arrived since the last write), keeping the newest
/// `keep` files. [`try_resume_deployment`] restarts a killed run from the
/// newest valid checkpoint; a torn or corrupt latest file falls back to its
/// predecessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding the numbered checkpoint files.
    pub dir: PathBuf,
    /// Chunks between checkpoint writes (clamped to at least 1).
    pub every_chunks: usize,
    /// Checkpoints retained, newest first (clamped to at least 1).
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every 8 chunks, keeping the last 2 files.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every_chunks: 8,
            keep: 2,
        }
    }

    /// Sets the write interval (builder style).
    #[must_use]
    pub fn every(mut self, every_chunks: usize) -> Self {
        self.every_chunks = every_chunks;
        self
    }

    /// Sets the retention budget (builder style).
    #[must_use]
    pub fn keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }
}

/// Write-ahead logging of arriving chunks for a deployment run.
///
/// Checkpoints make the deployment *state* crash-consistent, but a chunk
/// that arrives between two checkpoints exists only in memory until the
/// next checkpoint covers it. When set on [`DeploymentConfig::wal`], every
/// arriving raw chunk is appended to an on-disk write-ahead log (group
/// committed every `fsync_every` records, or when the oldest buffered
/// record ages past `group_window_secs` on the deployment's simulated
/// clock) *before* the pipeline processes it. [`try_resume_deployment`]
/// then replays checkpoint + WAL suffix — recovered records re-ordered by
/// sequence number — and lands bit-identical to an uninterrupted run even
/// when the crash falls between checkpoints. Segments are rotated at
/// `segment_bytes` and retired as soon as a durable checkpoint covers every
/// record they hold. `None` (the default) writes nothing, costs the hot
/// path a single branch per chunk, and preserves the pre-existing
/// checkpoint-boundary resume semantics exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct WalConfig {
    /// Directory holding the numbered WAL segment files.
    pub dir: PathBuf,
    /// Records per group commit (1 = fsync every append). Clamped to at
    /// least 1.
    pub fsync_every: usize,
    /// Maximum simulated age of the oldest buffered record before a commit
    /// is forced regardless of batch fill (0 disables the window).
    pub group_window_secs: f64,
    /// Rotate to a fresh segment once the active one exceeds this many
    /// bytes.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// Log into `dir`, group-committing every 8 records or 1 simulated
    /// second, rotating segments at 256 KiB.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync_every: 8,
            group_window_secs: 1.0,
            segment_bytes: 256 * 1024,
        }
    }

    /// Sets the group-commit batch size (builder style).
    #[must_use]
    pub fn fsync_every(mut self, fsync_every: usize) -> Self {
        self.fsync_every = fsync_every;
        self
    }

    /// Sets the group-commit window in simulated seconds (builder style).
    #[must_use]
    pub fn group_window(mut self, group_window_secs: f64) -> Self {
        self.group_window_secs = group_window_secs;
        self
    }

    /// Sets the segment rotation threshold in bytes (builder style).
    #[must_use]
    pub fn segment_bytes(mut self, segment_bytes: u64) -> Self {
        self.segment_bytes = segment_bytes;
        self
    }
}

/// Live telemetry for a deployment run.
///
/// When set on [`DeploymentConfig::telemetry`] (and metrics are collected),
/// the loop samples every registered counter, gauge, and histogram into a
/// ring-buffered [`TelemetryStore`] every `every_chunks` chunks, stamped on
/// the loop's deterministic simulation clock. Each sample also drives the
/// stateful SLA monitor ([`AlertMonitor::observe`]) and the multi-window SLO
/// burn-rate rules ([`SloMonitor::deployment_defaults`]), with per-rule
/// cooldown so a persistent breach lands in [`DeploymentResult::alerts`]
/// once per cooldown window instead of once per evaluation. With a
/// [`RecorderConfig`] attached, the store is additionally persisted to a
/// crash-survivable on-disk segment log (the flight recorder) for
/// post-mortem analysis. `None` (the default) costs the hot path a single
/// branch per chunk, and an enabled store never feeds back into training:
/// weights, curves, and accounted cost are bit-identical with telemetry on
/// or off.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Chunks between samples (clamped to at least 1).
    pub every_chunks: usize,
    /// Ring-buffer capacity per series (clamped to at least 1).
    pub capacity: usize,
    /// Per-rule alert cooldown in simulated seconds. The default
    /// (`f64::INFINITY`) reports each breaching rule exactly once per run.
    pub cooldown_secs: f64,
    /// Serving p99 latency objective in seconds for the
    /// `slo.serving_p99_burn` rule.
    pub serving_p99_budget_secs: f64,
    /// Metric-name prefixes excluded from sampling. The default excludes
    /// `engine.*`: work-stealing queue depths and steal counts depend on
    /// thread scheduling, and excluding them keeps recorded telemetry
    /// bit-identical across worker counts.
    pub exclude_prefixes: Vec<String>,
    /// Optional flight recorder persisting the store across crashes.
    pub recorder: Option<RecorderConfig>,
}

impl TelemetryConfig {
    /// Sample every chunk into 256-point rings, report each breaching rule
    /// once, exclude the scheduling-dependent `engine.*` series, and write
    /// no segments.
    pub fn new() -> Self {
        Self {
            every_chunks: 1,
            capacity: DEFAULT_SERIES_CAPACITY,
            cooldown_secs: f64::INFINITY,
            serving_p99_budget_secs: 0.05,
            exclude_prefixes: vec![String::from("engine.")],
            recorder: None,
        }
    }

    /// Sets the sampling interval (builder style).
    #[must_use]
    pub fn every(mut self, every_chunks: usize) -> Self {
        self.every_chunks = every_chunks;
        self
    }

    /// Sets the per-series ring capacity (builder style).
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the alert cooldown (builder style).
    #[must_use]
    pub fn cooldown(mut self, cooldown_secs: f64) -> Self {
        self.cooldown_secs = cooldown_secs;
        self
    }

    /// Attaches a flight recorder (builder style).
    #[must_use]
    pub fn recorder(mut self, recorder: RecorderConfig) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Flight-recorder persistence for [`TelemetryConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Directory holding the numbered segment files.
    pub dir: PathBuf,
    /// Segments retained, newest first (clamped to at least 1).
    pub keep: usize,
    /// Telemetry samples between durable segment writes (clamped to at
    /// least 1). The loop also flushes at shutdown and on an injected
    /// crash, so the on-disk timeline is at most one flush interval stale.
    pub flush_every_samples: usize,
}

impl RecorderConfig {
    /// Record into `dir`, flushing every 8 samples and keeping 4 segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            keep: 4,
            flush_every_samples: 8,
        }
    }

    /// Sets the retention budget (builder style).
    #[must_use]
    pub fn keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }

    /// Sets the flush interval (builder style).
    #[must_use]
    pub fn flush_every(mut self, samples: usize) -> Self {
        self.flush_every_samples = samples;
        self
    }
}

/// Checkpoint activity of one run. Deliberately *outside* the bit-identity
/// contract: a resumed run legitimately writes more checkpoints (and counts
/// its restore) than the uninterrupted run it otherwise reproduces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointStats {
    /// Durable checkpoint files completed.
    pub writes: u64,
    /// Bytes written across those files (envelope included).
    pub bytes_written: u64,
    /// Restores performed by this run's checkpoint lineage.
    pub restores: u64,
}

/// Everything a deployment run needs besides the pipeline spec.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Freshness mechanism.
    pub mode: DeploymentMode,
    /// Platform optimizations.
    pub optimization: OptimizationConfig,
    /// Simulated chunk arrival period in seconds (URL: 60 s; Taxi: 3600 s).
    pub chunk_period_secs: f64,
    /// Cost-model rates.
    pub cost_model: CostModel,
    /// Seed for the sampler.
    pub seed: u64,
    /// Execution engine for all batch work: initial fit, periodical
    /// retraining's history transformation, proactive re-materialization,
    /// and sharded gradient computation. One persistent worker pool is
    /// shared by every deployment mode. Results and accounted cost are
    /// engine-independent (bit-identical); a threaded engine only reduces
    /// wall-clock time.
    pub engine: ExecutionEngine,
    /// Deterministic fault-injection plan. [`FaultPlan::none`] (the
    /// default) injects nothing and adds no overhead; an active plan
    /// injects disk errors, chunk corruption, worker panics, and latency
    /// keyed purely by `(seed, site, key, attempt)` — identical across
    /// reruns and worker counts.
    pub faults: FaultPlan,
    /// Spill evicted feature chunks to a run-private temporary directory
    /// (removed when the run ends) instead of dropping them. Gives disk
    /// faults a real surface; lookups fall back to re-materialization when
    /// a spill read fails beyond the retry budget.
    pub spill_to_disk: bool,
    /// Collect runtime metrics (counters, gauges, latency histograms,
    /// event log) into [`DeploymentResult::metrics`]. Off by default: the
    /// disabled handle adds no locking, allocation, or clock reads to the
    /// hot path. For an injected clock or a shared registry use
    /// [`try_run_deployment_observed`] instead.
    pub collect_metrics: bool,
    /// Collect a causal span tree (deployment phases → engine maps →
    /// per-worker tasks) into [`DeploymentResult::trace`]. Off by default:
    /// the disabled tracer's per-span cost is a single branch. Tracing
    /// never perturbs results — weights, curves, accounted cost, and the
    /// metrics snapshot are bit-identical with and without it.
    pub collect_traces: bool,
    /// Crash-consistent checkpointing. `None` (the default) writes nothing
    /// and costs the hot path a single branch per chunk.
    pub checkpoint: Option<CheckpointConfig>,
    /// Write-ahead logging of arriving chunks, so resume can replay the
    /// suffix a crash would otherwise lose between checkpoints. `None` (the
    /// default) writes nothing and costs the hot path a single branch per
    /// chunk.
    pub wal: Option<WalConfig>,
    /// Live telemetry: ring-buffered time series over every metric, SLO
    /// burn-rate alerting, and an optional crash-survivable flight
    /// recorder. Requires metrics collection to record anything; `None`
    /// (the default) costs the hot path a single branch per chunk.
    pub telemetry: Option<TelemetryConfig>,
    /// A serving front-end to keep fresh: when set, the run publishes the
    /// deployed `(pipeline, model)` pair to this [`ModelServer`] after the
    /// initial fit, after every training event (proactive instance or
    /// periodical retraining), at every chunk boundary, and — on resume —
    /// immediately after state restoration, so an attached server never
    /// serves a pre-crash stale snapshot. `None` (the default) costs one
    /// branch per site. The server is an `Arc` handle: clone it before
    /// attaching to keep answering queries concurrently. Publishing never
    /// perturbs training results (the server receives clones).
    pub serving: Option<ModelServer>,
}

impl DeploymentConfig {
    /// An online-only configuration (the baseline's defaults).
    pub fn online() -> Self {
        Self {
            mode: DeploymentMode::Online,
            optimization: OptimizationConfig::default(),
            chunk_period_secs: 60.0,
            cost_model: CostModel::commodity(),
            seed: 17,
            engine: ExecutionEngine::Sequential,
            faults: FaultPlan::none(),
            spill_to_disk: false,
            collect_metrics: false,
            collect_traces: false,
            checkpoint: None,
            wal: None,
            telemetry: None,
            serving: None,
        }
    }

    /// A continuous configuration with static scheduling every
    /// `every_chunks`, sampling `sample_chunks` per instance.
    pub fn continuous(
        every_chunks: usize,
        sample_chunks: usize,
        strategy: SamplingStrategy,
    ) -> Self {
        Self {
            mode: DeploymentMode::Continuous {
                scheduler: Scheduler::Static { every_chunks },
                sample_chunks,
                strategy,
            },
            ..Self::online()
        }
    }

    /// A periodical configuration retraining every `retrain_every` chunks
    /// with warm starting.
    pub fn periodical(retrain_every: usize) -> Self {
        Self {
            mode: DeploymentMode::Periodical {
                retrain_every,
                warm_start: true,
            },
            ..Self::online()
        }
    }
}

/// Everything a deployment run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentResult {
    /// Approach name (`Online` / `Periodical` / `Continuous`).
    pub approach: String,
    /// Cumulative prequential error at the end of the deployment.
    pub final_error: f64,
    /// Mean of the cumulative-error curve (Figure 8's quality axis).
    pub average_error: f64,
    /// `(examples_seen, cumulative_error)` per deployment chunk
    /// (Figure 4 a/c).
    pub error_curve: Vec<(u64, f64)>,
    /// `(chunk_index, cumulative_accounted_seconds)` (Figure 4 b/d).
    pub cost_curve: Vec<(u64, f64)>,
    /// Accounted seconds per phase.
    pub preprocessing_secs: f64,
    /// Accounted training seconds.
    pub training_secs: f64,
    /// Accounted prediction seconds.
    pub prediction_secs: f64,
    /// Accounted materialization-I/O seconds.
    pub io_secs: f64,
    /// Total accounted deployment cost in seconds.
    pub total_secs: f64,
    /// Real wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Proactive-training instances executed.
    pub proactive_runs: u64,
    /// Mean accounted seconds per proactive-training instance (the paper
    /// reports 200 ms / 700 ms).
    pub avg_proactive_secs: f64,
    /// Full retrainings executed (periodical only).
    pub retrain_runs: u64,
    /// Chunk-store behaviour counters.
    pub store_stats: StoreStats,
    /// Measured materialization utilization rate μ over the run.
    pub empirical_mu: f64,
    /// Prediction queries answered.
    pub queries_answered: u64,
    /// Initial-training report.
    pub initial_report: TrainReport,
    /// Final model weights (dense). Lets callers verify that two runs —
    /// e.g. sequential vs threaded — produced bit-identical models.
    pub final_weights: Vec<f64>,
    /// Injected-fault and recovery counters (all zero without a fault plan).
    pub fault_stats: FaultStats,
    /// Storage-tier counters: spills, disk hits, read fallbacks.
    pub tiered_stats: TieredStats,
    /// Uniform observability snapshot spanning engine, storage, scheduler,
    /// and trainer (empty unless [`DeploymentConfig::collect_metrics`] is
    /// set or a [`Metrics`] handle was passed to
    /// [`try_run_deployment_observed`]).
    pub metrics: MetricsSnapshot,
    /// Causal span tree across all deployment phases and worker threads
    /// (empty unless [`DeploymentConfig::collect_traces`] is set or a
    /// [`Tracer`] handle was passed to [`try_run_deployment_traced`]).
    /// Export with [`TraceSnapshot::to_chrome_trace`] or
    /// [`TraceSnapshot::to_folded_stacks`].
    pub trace: TraceSnapshot,
    /// SLA alerts fired by the default [`AlertMonitor`] over the final
    /// metrics snapshot (empty unless metrics were collected). Each fired
    /// alert is also appended to the event log as `alert.fired`. With
    /// [`DeploymentConfig::telemetry`] set, these come from the stateful
    /// per-sample monitors instead (threshold rules plus SLO burn rules,
    /// deduplicated by the configured cooldown).
    pub alerts: Vec<Alert>,
    /// Ring-buffered time series over every sampled metric (empty unless
    /// [`DeploymentConfig::telemetry`] is set and metrics were collected).
    /// Export with [`TelemetryStore::to_prometheus`],
    /// [`TelemetryStore::to_csv`], or [`TelemetryStore::to_json`].
    pub telemetry: TelemetryStore,
    /// Checkpoint writes/bytes/restores (all zero without
    /// [`DeploymentConfig::checkpoint`]). Not part of the bit-identity
    /// contract — see [`CheckpointStats`].
    pub checkpoint_stats: CheckpointStats,
    /// WAL appends/commits/rotations/recovery counters (all zero without
    /// [`DeploymentConfig::wal`]). Not part of the bit-identity contract —
    /// a resumed run legitimately commits and replays differently from the
    /// uninterrupted run it otherwise reproduces.
    #[serde(default)]
    pub wal_stats: WalStats,
}

impl DeploymentResult {
    /// Cost ratio of this run against another (e.g. periodical / continuous).
    pub fn cost_ratio_to(&self, other: &DeploymentResult) -> f64 {
        self.total_secs / other.total_secs.max(1e-12)
    }
}

/// A deployment run failed beyond the platform's recovery budget.
#[derive(Debug)]
pub enum DeploymentError {
    /// A storage-layer failure (duplicate timestamp, unrecoverable I/O).
    Storage(StorageError),
    /// An engine-layer failure (worker dead beyond the restart budget).
    Engine(EngineError),
    /// The spec's pipeline factory failed (e.g. a non-incremental
    /// component) — a configuration error, surfaced typed instead of
    /// panicking inside the deployment loop.
    Pipeline(PipelineError),
    /// The process was killed by an injected crash point (tests only; a
    /// real crash never returns). The run's partial state is exactly what a
    /// `kill -9` at that point would leave on disk.
    Crashed(CrashSite),
    /// Resume was requested but there is nothing to resume from: no
    /// [`DeploymentConfig::checkpoint`] configured, or no valid checkpoint
    /// file in the directory.
    NoCheckpoint(String),
}

impl std::fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeploymentError::Storage(e) => write!(f, "storage failure: {e}"),
            DeploymentError::Engine(e) => write!(f, "engine failure: {e}"),
            DeploymentError::Pipeline(e) => write!(f, "pipeline failure: {e}"),
            DeploymentError::Crashed(site) => {
                write!(f, "injected crash at the {} site", site.name())
            }
            DeploymentError::NoCheckpoint(detail) => {
                write!(f, "nothing to resume from: {detail}")
            }
        }
    }
}

impl std::error::Error for DeploymentError {}

impl From<StorageError> for DeploymentError {
    fn from(e: StorageError) -> Self {
        DeploymentError::Storage(e)
    }
}

impl From<EngineError> for DeploymentError {
    fn from(e: EngineError) -> Self {
        DeploymentError::Engine(e)
    }
}

impl From<PipelineError> for DeploymentError {
    fn from(e: PipelineError) -> Self {
        DeploymentError::Pipeline(e)
    }
}

/// Monotonic discriminator for run-private spill directories, so concurrent
/// runs in one process never collide.
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn private_spill_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "cdp-spill-{}-{}",
        std::process::id(),
        SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs one deployment end to end: initial training on the stream's initial
/// chunks, then the arrival loop over the deployment range.
///
/// # Panics
/// Panics when the run fails beyond the platform's recovery budget; use
/// [`try_run_deployment`] for a typed error instead.
pub fn run_deployment(
    stream: &dyn ChunkStream,
    spec: &DeploymentSpec,
    config: &DeploymentConfig,
) -> DeploymentResult {
    match try_run_deployment(stream, spec, config) {
        Ok(result) => result,
        Err(e) => panic!("deployment failed: {e}"),
    }
}

/// [`run_deployment`] with failures surfaced as typed errors.
///
/// Recovery happens below this level — disk retries in the storage tier,
/// fall-through re-materialization for lost spills, worker restarts in the
/// engine — so an `Err` here means the fault budget was genuinely
/// exhausted (or a logic error such as a duplicate timestamp).
///
/// # Errors
/// [`DeploymentError::Storage`] or [`DeploymentError::Engine`].
pub fn try_run_deployment(
    stream: &dyn ChunkStream,
    spec: &DeploymentSpec,
    config: &DeploymentConfig,
) -> Result<DeploymentResult, DeploymentError> {
    let metrics = if config.collect_metrics {
        Metrics::collecting()
    } else {
        Metrics::disabled()
    };
    try_run_deployment_observed(stream, spec, config, metrics)
}

/// [`try_run_deployment`] recording runtime metrics into an explicit
/// [`Metrics`] handle — pass `Metrics::with_clock(...)` to stamp events and
/// spans against an injected (e.g. virtual) clock, or a shared handle to
/// aggregate several runs into one registry. The handle overrides
/// [`DeploymentConfig::collect_metrics`].
///
/// Metrics never feed back into results: weights, error curves, and
/// accounted cost are bit-identical with and without collection (only
/// wall-clock overhead differs, and the disabled handle's is zero).
///
/// # Errors
/// Same as [`try_run_deployment`].
pub fn try_run_deployment_observed(
    stream: &dyn ChunkStream,
    spec: &DeploymentSpec,
    config: &DeploymentConfig,
    metrics: Metrics,
) -> Result<DeploymentResult, DeploymentError> {
    let tracer = if config.collect_traces {
        Tracer::collecting()
    } else {
        Tracer::disabled()
    };
    try_run_deployment_traced(stream, spec, config, metrics, tracer)
}

/// [`try_run_deployment_observed`] recording causal spans into an explicit
/// [`Tracer`] handle — pass `Tracer::with_clock(...)` for an injected clock
/// or a shared handle to merge several runs into one span buffer. The
/// handle overrides [`DeploymentConfig::collect_traces`].
///
/// The span tree is rooted at `deployment.run`; initial training, each
/// arriving chunk, periodical retrainings, and proactive-training instances
/// open child spans, and engine maps dispatched inside them parent their
/// per-worker `engine.task` spans across threads. Like metrics, traces
/// never feed back into results.
///
/// # Errors
/// Same as [`try_run_deployment`].
pub fn try_run_deployment_traced(
    stream: &dyn ChunkStream,
    spec: &DeploymentSpec,
    config: &DeploymentConfig,
    metrics: Metrics,
    tracer: Tracer,
) -> Result<DeploymentResult, DeploymentError> {
    let wall = Stopwatch::start();
    let run_span = tracer.root("deployment.run");
    let run_ctx = run_span.context();
    let strategy = match config.mode {
        DeploymentMode::Continuous { strategy, .. } => strategy,
        _ => SamplingStrategy::Uniform,
    };
    let hook: Arc<dyn FaultHook> = if config.faults.is_active() {
        Arc::new(FaultInjector::new(config.faults))
    } else {
        Arc::new(NoFaults)
    };
    let mut dm = if config.spill_to_disk {
        DataManager::with_spill(
            config.optimization.budget,
            strategy,
            config.seed,
            private_spill_dir(),
            Arc::clone(&hook),
            RetryPolicy::default(),
        )?
    } else {
        DataManager::new(config.optimization.budget, strategy, config.seed)
    };
    dm.set_metrics(metrics.clone());
    let mut pm = PipelineManager::new(spec.try_build_pipeline()?, &spec.sgd, spec.online_batch)
        .with_engine(config.engine)
        .with_fault_hook(Arc::clone(&hook))
        .with_metrics(metrics.clone())
        .with_tracer(tracer.clone());
    let evaluator = PrequentialEvaluator::new(spec.metric, 0);
    let proactive = if config.optimization.online_stats {
        ProactiveTrainer::new()
    } else {
        ProactiveTrainer::without_online_stats()
    };

    // ---- Initial training (not part of the deployment cost, like the
    // paper's Table 2 split) ----
    let mut initial_ledger = CostLedger::new(config.cost_model);
    let initial: Vec<_> = stream.initial();
    let fit_span = tracer.child_of("deployment.initial_fit", run_ctx);
    pm.set_trace_scope(fit_span.context());
    let (initial_report, feature_chunks) = pm.initial_fit(&initial, &spec.sgd, &mut initial_ledger);
    pm.set_trace_scope(None);
    fit_span.finish();
    if let Some(server) = &config.serving {
        publish_serving(server, &pm, &metrics, "initial");
    }
    for (raw, fc) in initial.into_iter().zip(feature_chunks) {
        dm.ingest_raw(raw)?;
        dm.store_features(fc)?;
    }
    dm.store_mut().reset_stats();

    // ---- Deployment loop ----
    // Simulated deployment clock: advances by exactly one chunk period
    // per arriving chunk, independent of wall time, so scheduling
    // decisions stay deterministic (the bit-identical contract). Shared
    // with the WAL writer so group-commit windows run on simulated time.
    let sim = Arc::new(VirtualClock::new());
    let wal = match &config.wal {
        Some(wc) => Some(open_wal(
            wc,
            &hook,
            &sim,
            &metrics,
            stream.deployment_range().start as u64,
            false,
        )?),
        None => None,
    };
    let st = LoopState {
        dm,
        pm,
        evaluator,
        proactive,
        ledger: CostLedger::new(config.cost_model),
        sim,
        chunks_since_training: 0,
        last_training_secs: 0.0,
        last_training_at_secs: 0.0,
        proactive_runs: 0,
        proactive_secs_sum: 0.0,
        retrain_runs: 0,
        // Per-chunk error monitor feeding the drift-adaptive scheduler
        // (chunk-granular windows: ~60 stable chunks vs the last 12).
        drift_monitor: DriftDetector::new(60, 12, 2.0, 3.0),
        drift_level: 0,
        prev_acc: 0.0,
        prev_count: 0,
        initial_report,
        checkpoint_stats: CheckpointStats::default(),
        wal,
    };
    run_chunk_loop(
        stream,
        spec,
        config,
        hook,
        metrics,
        tracer,
        wall,
        run_span,
        st,
        stream.deployment_range().start,
    )
}

/// Every piece of state the chunk loop mutates — what a fresh run
/// initializes from scratch, a checkpoint serializes, and a resume rebuilds.
struct LoopState {
    dm: DataManager,
    pm: PipelineManager,
    evaluator: PrequentialEvaluator,
    proactive: ProactiveTrainer,
    ledger: CostLedger,
    sim: Arc<VirtualClock>,
    chunks_since_training: usize,
    last_training_secs: f64,
    last_training_at_secs: f64,
    proactive_runs: u64,
    proactive_secs_sum: f64,
    retrain_runs: u64,
    drift_monitor: DriftDetector,
    drift_level: u8,
    prev_acc: f64,
    prev_count: u64,
    initial_report: TrainReport,
    checkpoint_stats: CheckpointStats,
    wal: Option<WalRuntime>,
}

/// Live WAL state for a run: the append-side writer plus whatever recovery
/// salvaged from the directory at open.
struct WalRuntime {
    writer: WalWriter,
    /// Recovered records sorted by sequence number. A resumed run reads
    /// arrivals from here first (falling back to the stream for anything
    /// the WAL lost or never held) — which is what re-orders late and
    /// out-of-order arrivals deterministically at replay.
    replay: Vec<(u64, RawChunk)>,
}

impl WalRuntime {
    fn replay_chunk(&self, seq: u64) -> Option<&RawChunk> {
        self.replay
            .binary_search_by_key(&seq, |(s, _)| *s)
            .ok()
            .map(|i| &self.replay[i].1)
    }
}

/// Opens (recovering first) the WAL for a run starting at `start_seq`. The
/// writer continues past everything already durable; `keep_replay` decides
/// whether recovered records at or past `start_seq` are replayed into the
/// loop (resume) or left to the stream (fresh run).
fn open_wal(
    wc: &WalConfig,
    hook: &Arc<dyn FaultHook>,
    clock: &Arc<VirtualClock>,
    metrics: &Metrics,
    start_seq: u64,
    keep_replay: bool,
) -> Result<WalRuntime, DeploymentError> {
    let recovery = WalDir::open(&wc.dir)?.recover()?;
    let clock: Arc<dyn Clock> = Arc::<VirtualClock>::clone(clock);
    let mut writer = WalWriter::open(
        &wc.dir,
        WalOptions {
            fsync_every: wc.fsync_every,
            group_window_secs: wc.group_window_secs,
            segment_bytes: wc.segment_bytes,
            retry: RetryPolicy::default(),
        },
        Arc::clone(hook),
        clock,
        metrics.clone(),
        recovery.next_seq().max(start_seq),
    )?;
    let replayed = if keep_replay {
        recovery
            .chunks
            .iter()
            .filter(|(s, _)| *s >= start_seq)
            .count() as u64
    } else {
        0
    };
    writer.absorb_recovery(&recovery, replayed);
    let replay = if keep_replay {
        recovery
            .chunks
            .into_iter()
            .filter(|(s, _)| *s >= start_seq)
            .collect()
    } else {
        Vec::new()
    };
    Ok(WalRuntime { writer, replay })
}

/// Publishes the manager's current `(pipeline, model)` pair to an attached
/// serving front and logs a `serving.publish` event naming the site and the
/// exact weights (by fingerprint), so tests and operators can tell *which*
/// model each publish carried. Clones never perturb training state.
fn publish_serving(server: &ModelServer, pm: &PipelineManager, metrics: &Metrics, source: &str) {
    let version = server.publish(pm.pipeline().clone(), pm.trainer().model().clone());
    if metrics.is_enabled() {
        let fp = weights_fingerprint(pm.trainer().model().weights().as_slice());
        metrics.event(
            "serving.publish",
            format!("{source} version {version} fp {fp:016x}"),
        );
    }
}

/// Live state of the telemetry layer: the ring-buffer store, the stateful
/// alert monitors, and the optional flight recorder. Built once per run
/// (only when telemetry is configured *and* metrics are enabled), so a
/// disabled configuration costs the chunk loop a single `Option` branch.
struct TelemetryRuntime {
    store: TelemetryStore,
    monitor: AlertMonitor,
    slo: SloMonitor,
    recorder: Option<FlightRecorder>,
    alerts: Vec<Alert>,
    every: usize,
    chunks_since: usize,
    flush_every: usize,
    samples_since_flush: usize,
}

impl TelemetryRuntime {
    fn new(tc: &TelemetryConfig, chunk_period_secs: f64) -> Result<Self, DeploymentError> {
        let recorder = match &tc.recorder {
            Some(rc) => Some(
                FlightRecorder::open(&rc.dir, rc.keep)
                    .map_err(|e| DeploymentError::Storage(StorageError::Io(e)))?,
            ),
            None => None,
        };
        Ok(Self {
            store: TelemetryStore::new(tc.capacity)
                .with_exclude_prefixes(tc.exclude_prefixes.clone()),
            monitor: AlertMonitor::deployment_defaults(chunk_period_secs)
                .with_cooldown(tc.cooldown_secs),
            slo: SloMonitor::deployment_defaults(tc.serving_p99_budget_secs)
                .with_cooldown(tc.cooldown_secs),
            recorder,
            alerts: Vec::new(),
            every: tc.every_chunks.max(1),
            chunks_since: 0,
            flush_every: tc
                .recorder
                .as_ref()
                .map_or(usize::MAX, |rc| rc.flush_every_samples.max(1)),
            samples_since_flush: 0,
        })
    }

    /// One sampling tick: records a snapshot of every metric, runs the
    /// stateful threshold and burn-rate monitors over it, and flushes a
    /// segment when the flush interval elapsed.
    fn sample(&mut self, metrics: &Metrics, at_secs: f64) -> Result<(), DeploymentError> {
        let snap = metrics.snapshot();
        self.store.record(at_secs, &snap);
        let mut fired = self.monitor.observe(&snap, at_secs);
        fired.extend(self.slo.observe(&self.store, at_secs));
        for alert in &fired {
            metrics.event("alert.fired", alert.message());
        }
        self.alerts.extend(fired);
        self.samples_since_flush += 1;
        if let Some(rec) = self.recorder.as_mut() {
            if self.samples_since_flush >= self.flush_every {
                rec.flush(&self.store, &self.alerts, at_secs)
                    .map_err(|e| DeploymentError::Storage(StorageError::Io(e)))?;
                self.samples_since_flush = 0;
            }
        }
        Ok(())
    }

    /// Best-effort segment write on the way out of a crashing run — the
    /// post-mortem timeline is worth more than a clean error path, so I/O
    /// failures here are swallowed.
    fn crash_flush(&mut self, at_secs: f64) {
        if let Some(rec) = self.recorder.as_mut() {
            let _ = rec.flush(&self.store, &self.alerts, at_secs);
        }
    }
}

/// The shared arrival loop: chunks `start_idx..total` through evaluation,
/// online learning, mode-specific freshness work, checkpointing, and final
/// result assembly. Fresh runs enter at the deployment range's start;
/// resumed runs enter one past the restored checkpoint.
#[allow(clippy::too_many_arguments)]
fn run_chunk_loop(
    stream: &dyn ChunkStream,
    spec: &DeploymentSpec,
    config: &DeploymentConfig,
    hook: Arc<dyn FaultHook>,
    metrics: Metrics,
    tracer: Tracer,
    wall: Stopwatch,
    run_span: TraceSpan,
    mut st: LoopState,
    start_idx: usize,
) -> Result<DeploymentResult, DeploymentError> {
    let run_ctx = run_span.context();
    let ckpt_dir = match &config.checkpoint {
        Some(c) => Some(CheckpointDir::open(&c.dir, c.keep)?),
        None => None,
    };
    let ckpt_every = config
        .checkpoint
        .as_ref()
        .map(|c| c.every_chunks.max(1))
        .unwrap_or(usize::MAX);
    let mut chunks_since_ckpt = 0usize;
    let mut last_processed_idx = None;
    let mut telemetry = match (&config.telemetry, metrics.is_enabled()) {
        (Some(tc), true) => Some(TelemetryRuntime::new(tc, config.chunk_period_secs)?),
        _ => None,
    };

    for idx in start_idx..stream.total_chunks() {
        // Arrival: on resume the recovered WAL suffix is authoritative
        // (records re-ordered by sequence number); the stream covers
        // anything the WAL lost or never held.
        let raw = match st.wal.as_ref().and_then(|w| w.replay_chunk(idx as u64)) {
            Some(chunk) => chunk.clone(),
            None => stream.chunk(idx),
        };
        st.sim.advance_secs(config.chunk_period_secs);
        let chunk_span = tracer.child_of("deployment.chunk", run_ctx);
        let chunk_ctx = chunk_span.context();
        st.pm.set_trace_scope(chunk_ctx);
        metrics.counter("deployment.chunks").inc();
        // WAL first: the arrival must be durable (or at least buffered
        // toward the next group commit) before any processing touches it.
        if let Some(w) = st.wal.as_mut() {
            w.writer.append(idx as u64, &raw)?;
            // A "wal-append" crash kills the process mid-group-commit:
            // half the buffered bytes reach the segment as a torn,
            // unsynced tail that recovery must truncate.
            if hook.crash_now(CrashSite::WalAppend) {
                let _ = w.writer.crash_torn();
                if let Some(tel) = telemetry.as_mut() {
                    tel.crash_flush(st.sim.now_secs());
                }
                return Err(DeploymentError::Crashed(CrashSite::WalAppend));
            }
            // A "wal-rotate" crash kills the process mid-rotation: the
            // next segment exists only as an orphaned `.tmp` file that
            // recovery must ignore.
            if hook.crash_now(CrashSite::WalRotate) {
                let _ = w.writer.crash_rotation();
                if let Some(tel) = telemetry.as_mut() {
                    tel.crash_flush(st.sim.now_secs());
                }
                return Err(DeploymentError::Crashed(CrashSite::WalRotate));
            }
        }
        // Stage 1: discretized arrival into the store (raw history).
        st.dm.ingest_raw(raw.clone())?;
        // Stages 2 + prequential evaluation + online learning.
        let fc = st
            .pm
            .process_online_chunk(&raw, &mut st.evaluator, &mut st.ledger);
        st.dm.store_features(fc)?;
        st.chunks_since_training += 1;

        // Feed this chunk's mean error into the drift monitor.
        let fresh = st.evaluator.count() - st.prev_count;
        if fresh > 0 {
            let chunk_error = (st.evaluator.raw_accumulator() - st.prev_acc) / fresh as f64;
            st.prev_acc = st.evaluator.raw_accumulator();
            st.prev_count = st.evaluator.count();
            let observed = match st.drift_monitor.observe(chunk_error) {
                DriftStatus::Drift => 2,
                DriftStatus::Warning => 1,
                DriftStatus::Stable | DriftStatus::Warmup => 0,
            };
            if observed != st.drift_level {
                metrics.event(
                    "drift.level_change",
                    format!("chunk {idx}: {} -> {observed}", st.drift_level),
                );
            }
            st.drift_level = observed;
            metrics.gauge("drift.level").set(f64::from(st.drift_level));
        }

        match config.mode {
            DeploymentMode::Online => {}
            DeploymentMode::Periodical {
                retrain_every,
                warm_start,
            } => {
                if st.chunks_since_training >= retrain_every.max(1) {
                    st.chunks_since_training = 0;
                    st.last_training_at_secs = st.sim.now_secs();
                    st.retrain_runs += 1;
                    metrics.counter("deployment.retrains").inc();
                    let retrain_span = metrics.span("deployment.retrain_secs");
                    let retrain_trace = tracer.child_of("deployment.retrain", chunk_ctx);
                    st.pm.set_trace_scope(retrain_trace.context());
                    let history = st.dm.full_history();
                    if warm_start {
                        st.pm.retrain_warm(&history, &spec.sgd, &mut st.ledger);
                    } else {
                        // Cold restart: fresh pipeline statistics and model.
                        st.pm = PipelineManager::new(
                            spec.try_build_pipeline()?,
                            &spec.sgd,
                            spec.online_batch,
                        )
                        .with_engine(config.engine)
                        .with_fault_hook(Arc::clone(&hook))
                        .with_metrics(metrics.clone())
                        .with_tracer(tracer.clone());
                        st.pm.set_trace_scope(retrain_trace.context());
                        let owned: Vec<_> = history.iter().map(|c| (**c).clone()).collect();
                        st.pm.initial_fit(&owned, &spec.sgd, &mut st.ledger);
                    }
                    st.pm.set_trace_scope(chunk_ctx);
                    retrain_trace.finish();
                    retrain_span.finish();
                    if let Some(server) = &config.serving {
                        publish_serving(server, &st.pm, &metrics, "retrain");
                    }
                }
            }
            DeploymentMode::Continuous {
                scheduler,
                sample_chunks,
                ..
            } => {
                let queries = st.evaluator.count().max(1);
                let ctx = SchedulerContext {
                    chunk_period_secs: config.chunk_period_secs,
                    last_training_secs: st.last_training_secs,
                    avg_prediction_latency: st.ledger.phase(Phase::Prediction) / queries as f64,
                    prediction_rate: queries as f64 / ((idx + 1) as f64 * config.chunk_period_secs),
                    elapsed_secs: st.sim.now_secs() - st.last_training_at_secs,
                    chunks_since_last: st.chunks_since_training,
                    drift_level: st.drift_level,
                };
                metrics
                    .gauge("scheduler.t_secs")
                    .set(ctx.last_training_secs);
                metrics.gauge("scheduler.pr").set(ctx.prediction_rate);
                metrics
                    .gauge("scheduler.pl")
                    .set(ctx.avg_prediction_latency);
                if scheduler.should_fire(&ctx) {
                    metrics.counter("scheduler.fires").inc();
                    // How long past the Eq. 6 interval the platform waited
                    // before firing (0 = fired exactly on schedule).
                    if let Scheduler::Dynamic { slack } = scheduler {
                        let interval = Scheduler::dynamic_interval_secs(slack, &ctx);
                        if interval.is_finite() {
                            metrics
                                .histogram_with_bounds(
                                    "scheduler.fire_margin_secs",
                                    &[0.0, 1.0, 10.0, 60.0, 600.0, 3600.0],
                                )
                                .observe(ctx.elapsed_secs - interval);
                        }
                    }
                    st.chunks_since_training = 0;
                    st.last_training_at_secs = st.sim.now_secs();
                    let fire_span = tracer.child_of("proactive.fire", chunk_ctx);
                    let fire_ctx = fire_span.context();
                    let sample_span = tracer.child_of("dm.sample", fire_ctx);
                    let sampled = st.dm.sample(sample_chunks);
                    sample_span.finish();
                    st.pm.set_trace_scope(fire_ctx);
                    let outcome = st
                        .proactive
                        .try_execute(&mut st.pm, sampled, &mut st.ledger)?;
                    st.pm.set_trace_scope(chunk_ctx);
                    fire_span.finish();
                    metrics.counter("proactive.runs").inc();
                    metrics
                        .counter("proactive.materialized_chunks")
                        .add(outcome.materialized_chunks as u64);
                    metrics
                        .counter("proactive.spilled_chunks")
                        .add(outcome.spilled_chunks as u64);
                    metrics
                        .counter("proactive.rematerialized_chunks")
                        .add(outcome.rematerialized_chunks as u64);
                    metrics
                        .counter("proactive.points")
                        .add(outcome.points as u64);
                    if let Some(loss) = outcome.batch_loss {
                        metrics.gauge("proactive.batch_loss").set(loss);
                    }
                    metrics
                        .histogram("proactive.accounted_secs")
                        .observe(outcome.accounted_secs);
                    st.last_training_secs = outcome.accounted_secs;
                    st.proactive_secs_sum += outcome.accounted_secs;
                    st.proactive_runs += 1;
                    // Publish the freshly trained pair immediately — the
                    // paper's operational point: proactive training hands a
                    // new model to the serving layer within the same chunk.
                    if let Some(server) = &config.serving {
                        publish_serving(server, &st.pm, &metrics, "proactive");
                    }
                    // A "fire" crash kills the process right after the
                    // proactive fire was accounted, mid-chunk: the last
                    // durable checkpoint predates this chunk entirely.
                    if hook.crash_now(CrashSite::ProactiveFire) {
                        if let Some(tel) = telemetry.as_mut() {
                            tel.crash_flush(st.sim.now_secs());
                        }
                        return Err(DeploymentError::Crashed(CrashSite::ProactiveFire));
                    }
                } else {
                    metrics.counter("scheduler.skips").inc();
                }
            }
        }

        // Chunk-boundary publish: even without a training event, online SGD
        // advanced the weights this chunk, so an attached server gets the
        // freshest pair once per arrival period.
        if let Some(server) = &config.serving {
            publish_serving(server, &st.pm, &metrics, &format!("chunk {idx}"));
        }
        st.evaluator.checkpoint();
        st.ledger.checkpoint(idx as u64);
        st.pm.set_trace_scope(None);
        chunk_span.finish();
        last_processed_idx = Some(idx as u64);

        if let Some(dir) = &ckpt_dir {
            chunks_since_ckpt += 1;
            if chunks_since_ckpt >= ckpt_every {
                let bytes = match write_checkpoint(dir, idx as u64, &st, &hook, &metrics) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        // A checkpoint-site crash (or write failure) still
                        // leaves a post-mortem trail on disk.
                        if let Some(tel) = telemetry.as_mut() {
                            tel.crash_flush(st.sim.now_secs());
                        }
                        return Err(e);
                    }
                };
                st.checkpoint_stats.writes += 1;
                st.checkpoint_stats.bytes_written += bytes;
                chunks_since_ckpt = 0;
                // This checkpoint now owns every arrival up to `idx`: pin
                // it against the keep-budget pruner (the live WAL suffix
                // resumes from exactly this file) and retire the WAL
                // segments it fully covers.
                dir.pin(idx as u64);
                if let Some(w) = st.wal.as_mut() {
                    w.writer.gc(idx as u64)?;
                }
            }
            // Staleness in units of the configured interval: > 2.0 fires
            // the `checkpoint.staleness` default alert rule.
            metrics
                .gauge("checkpoint.staleness")
                .set(chunks_since_ckpt as f64 / ckpt_every as f64);
        }
        // Telemetry sampling tick: after the checkpoint block (so the
        // staleness gauge is current) and before the chunk-boundary crash
        // check (so a crashed run's last flushed sample covers this chunk).
        if let Some(tel) = telemetry.as_mut() {
            tel.chunks_since += 1;
            if tel.chunks_since >= tel.every {
                tel.chunks_since = 0;
                export_mu_gauges(&metrics, config, &st);
                tel.sample(&metrics, st.sim.now_secs())?;
            }
        }
        // A "chunk" crash kills the process at the chunk boundary, *after*
        // any due checkpoint write: that write's stats exclude the crash.
        if hook.crash_now(CrashSite::ChunkBoundary) {
            if let Some(tel) = telemetry.as_mut() {
                tel.crash_flush(st.sim.now_secs());
            }
            return Err(DeploymentError::Crashed(CrashSite::ChunkBoundary));
        }
    }

    // Clean shutdown: commit any buffered WAL tail so every arrival is
    // durable regardless of the shutdown checkpoint below.
    if let Some(w) = st.wal.as_mut() {
        w.writer.flush()?;
    }

    // Shutdown checkpoint: make the final state durable unless the last
    // periodic write already covered it (or nothing was processed).
    if let Some(dir) = &ckpt_dir {
        if chunks_since_ckpt > 0 {
            if let Some(idx) = last_processed_idx {
                let bytes = match write_checkpoint(dir, idx, &st, &hook, &metrics) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        if let Some(tel) = telemetry.as_mut() {
                            tel.crash_flush(st.sim.now_secs());
                        }
                        return Err(e);
                    }
                };
                st.checkpoint_stats.writes += 1;
                st.checkpoint_stats.bytes_written += bytes;
                dir.pin(idx);
                if let Some(w) = st.wal.as_mut() {
                    w.writer.gc(idx)?;
                }
            }
        }
        metrics.gauge("checkpoint.staleness").set(0.0);
    }

    let stats = st.dm.stats();
    if metrics.is_enabled() {
        metrics
            .counter("deployment.queries")
            .add(st.evaluator.count());
    }
    export_mu_gauges(&metrics, config, &st);
    // Final telemetry tick: sample the end-of-run state when the cadence
    // missed it, then make the full timeline durable.
    if let Some(tel) = telemetry.as_mut() {
        let at = st.sim.now_secs();
        if tel.chunks_since != 0 {
            tel.chunks_since = 0;
            tel.sample(&metrics, at)?;
        }
        if let Some(rec) = tel.recorder.as_mut() {
            if tel.samples_since_flush > 0 {
                rec.flush(&tel.store, &tel.alerts, at)
                    .map_err(|e| DeploymentError::Storage(StorageError::Io(e)))?;
                tel.samples_since_flush = 0;
            }
        }
    }
    // SLA alerting: with telemetry enabled the stateful per-sample monitors
    // already accumulated the (cooldown-deduplicated) fired set; otherwise
    // the stateless default monitor runs once over the final snapshot. In
    // both cases the fired set is identical with tracing on or off.
    let (alerts, telemetry_store) = match telemetry {
        Some(tel) => (tel.alerts, tel.store),
        None => {
            let alerts = if metrics.is_enabled() {
                let monitor = AlertMonitor::deployment_defaults(config.chunk_period_secs);
                let fired = monitor.evaluate(&metrics.snapshot(), st.sim.now_secs());
                for alert in &fired {
                    metrics.event("alert.fired", alert.message());
                }
                fired
            } else {
                Vec::new()
            };
            (alerts, TelemetryStore::default())
        }
    };
    run_span.finish();
    Ok(DeploymentResult {
        approach: config.mode.name().to_owned(),
        final_error: st.evaluator.error(),
        average_error: average_of_curve(st.evaluator.curve()),
        error_curve: st.evaluator.curve().to_vec(),
        cost_curve: st.ledger.curve().to_vec(),
        preprocessing_secs: st.ledger.phase(Phase::Preprocessing),
        training_secs: st.ledger.phase(Phase::Training),
        prediction_secs: st.ledger.phase(Phase::Prediction),
        io_secs: st.ledger.phase(Phase::MaterializationIo),
        total_secs: st.ledger.total(),
        wall_secs: wall.elapsed_secs(),
        proactive_runs: st.proactive_runs,
        avg_proactive_secs: if st.proactive_runs > 0 {
            st.proactive_secs_sum / st.proactive_runs as f64
        } else {
            0.0
        },
        retrain_runs: st.retrain_runs,
        store_stats: stats,
        empirical_mu: stats.utilization_rate(),
        queries_answered: st.evaluator.count(),
        initial_report: st.initial_report,
        final_weights: st.pm.trainer().model().weights().as_slice().to_vec(),
        fault_stats: hook.snapshot(),
        tiered_stats: st.dm.tiered_stats(),
        metrics: metrics.snapshot(),
        trace: tracer.snapshot(),
        alerts,
        telemetry: telemetry_store,
        checkpoint_stats: st.checkpoint_stats,
        wal_stats: st
            .wal
            .as_ref()
            .map(|w| w.writer.stats())
            .unwrap_or_default(),
    })
}

/// Exports the observed materialization utilization rate μ and its
/// analytical predictions (paper Eqs. 4/5) as gauges. Called at every
/// telemetry sampling tick — so the `slo.mu_divergence_burn` rule watches a
/// live signal — and once at end of run. The gap between observed and
/// predicted quantifies how far the run's access pattern departs from the
/// closed-form model; `MaxBytes` has no closed form in chunks, so only the
/// chunk-count budgets get a prediction.
fn export_mu_gauges(metrics: &Metrics, config: &DeploymentConfig, st: &LoopState) {
    if !metrics.is_enabled() {
        return;
    }
    metrics
        .gauge("pm.mu_observed")
        .set(st.dm.stats().utilization_rate());
    let strategy = match config.mode {
        DeploymentMode::Continuous { strategy, .. } => strategy,
        _ => SamplingStrategy::Uniform,
    };
    let total_n = st.dm.chunk_count();
    let capacity_m = match config.optimization.budget {
        StorageBudget::MaxChunks(m) => Some(m.min(total_n)),
        StorageBudget::Unbounded => Some(total_n),
        StorageBudget::MaxBytes(_) => None,
    };
    if let Some(m) = capacity_m {
        metrics.gauge("pm.mu_uniform").set(mu_uniform(m, total_n));
        if let SamplingStrategy::WindowBased { window } = strategy {
            if total_n > 0 {
                let w = window.clamp(1, total_n);
                metrics.gauge("pm.mu_window").set(mu_window(m, w, total_n));
            }
        }
    }
}

/// Assembles and durably writes one checkpoint, returning the bytes
/// written. The metrics snapshot is captured *before* this write's own
/// `checkpoint.*` accounting, so the embedded snapshot is causally
/// consistent with the rest of the payload.
fn write_checkpoint(
    dir: &CheckpointDir,
    idx: u64,
    st: &LoopState,
    hook: &Arc<dyn FaultHook>,
    metrics: &Metrics,
) -> Result<u64, DeploymentError> {
    let payload = assemble_checkpoint(idx, st, hook, metrics).encode();
    // An injected "checkpoint" crash kills the process mid-write: only a
    // torn temp file is left, exactly what a real kill produces. Recovery
    // must fall back to the previous durable checkpoint.
    if hook.crash_now(CrashSite::CheckpointWrite) {
        let _ = dir.write_torn(idx, &payload);
        return Err(DeploymentError::Crashed(CrashSite::CheckpointWrite));
    }
    let span = metrics.span("checkpoint.write_secs");
    let bytes = dir.write(idx, &payload)?;
    span.finish();
    metrics.counter("checkpoint.writes").inc();
    metrics.counter("checkpoint.write_bytes").add(bytes);
    Ok(bytes)
}

/// Captures the loop's dynamic state at the boundary after chunk `idx`.
fn assemble_checkpoint(
    idx: u64,
    st: &LoopState,
    hook: &Arc<dyn FaultHook>,
    metrics: &Metrics,
) -> DeploymentCheckpoint {
    let trainer = st.pm.trainer();
    let (_, opt_t, acc1, acc2) = trainer.optimizer().to_parts();
    let (drift_baseline, drift_recent) = st.drift_monitor.window_contents();
    DeploymentCheckpoint {
        chunk_idx: idx,
        now_secs: st.sim.now_secs(),
        weights: trainer.model().weights().as_slice().to_vec(),
        opt_t,
        opt_acc1: acc1.as_slice().to_vec(),
        opt_acc2: acc2.as_slice().to_vec(),
        points_seen: trainer.points_seen(),
        component_states: st.pm.pipeline().component_states(),
        pipeline_counters: st.pm.pipeline().counters(),
        eval_count: st.evaluator.count(),
        eval_acc: st.evaluator.raw_accumulator(),
        eval_curve: st.evaluator.curve().to_vec(),
        accounted: st.ledger.accounted(),
        cost_curve: st.ledger.curve().to_vec(),
        chunks_since_training: st.chunks_since_training as u64,
        last_training_secs: st.last_training_secs,
        last_training_at_secs: st.last_training_at_secs,
        proactive_runs: st.proactive_runs,
        proactive_secs_sum: st.proactive_secs_sum,
        retrain_runs: st.retrain_runs,
        drift_level: st.drift_level,
        drift_baseline,
        drift_recent,
        prev_acc: st.prev_acc,
        prev_count: st.prev_count,
        sampler_rng: st.dm.sampler_rng_state(),
        fault_stats: hook.snapshot(),
        fault_epoch: hook.worker_epoch(),
        store_stats: st.dm.stats(),
        tiered_stats: st.dm.tiered_stats(),
        manifest: st
            .dm
            .store()
            .materialized_timestamps()
            .into_iter()
            .map(|t| t.0)
            .collect(),
        initial_report: st.initial_report,
        ckpt_writes: st.checkpoint_stats.writes,
        ckpt_bytes: st.checkpoint_stats.bytes_written,
        ckpt_restores: st.checkpoint_stats.restores,
        metrics: metrics.snapshot(),
    }
}

/// Resumes a killed deployment from its newest valid checkpoint, running it
/// to completion. Panics on failure; use [`try_resume_deployment`] for a
/// typed error.
///
/// # Panics
/// Panics when there is nothing to resume from or the resumed run fails.
pub fn resume_deployment(
    stream: &dyn ChunkStream,
    spec: &DeploymentSpec,
    config: &DeploymentConfig,
) -> DeploymentResult {
    match try_resume_deployment(stream, spec, config) {
        Ok(result) => result,
        Err(e) => panic!("resume failed: {e}"),
    }
}

/// [`resume_deployment`] with failures surfaced as typed errors.
///
/// Resume receives the same `stream`, `spec`, and `config` the original run
/// used — the checkpoint stores only dynamic state and is meaningless
/// against different static inputs. The newest valid checkpoint in
/// `config.checkpoint.dir` wins; torn, corrupt, or version-mismatched files
/// are skipped in favour of their predecessor. The resumed run is
/// bit-identical to an uninterrupted one: same weights, prequential curve,
/// accounted cost, storage counters, and alerts.
///
/// An injected crash site in `config.faults` is cleared on resume: the dead
/// process already consumed that countdown.
///
/// # Errors
/// [`DeploymentError::NoCheckpoint`] when checkpointing is not configured
/// or no valid checkpoint file exists; [`DeploymentError::Storage`] with
/// [`StorageError::Corrupt`] when the checkpoint does not match the
/// spec/stream (never a panic); otherwise as [`try_run_deployment`].
pub fn try_resume_deployment(
    stream: &dyn ChunkStream,
    spec: &DeploymentSpec,
    config: &DeploymentConfig,
) -> Result<DeploymentResult, DeploymentError> {
    let metrics = if config.collect_metrics {
        Metrics::collecting()
    } else {
        Metrics::disabled()
    };
    try_resume_deployment_observed(stream, spec, config, metrics)
}

/// [`try_resume_deployment`] recording runtime metrics into an explicit
/// [`Metrics`] handle (which is first restored from the checkpoint's
/// embedded snapshot, then extended by the resumed run).
///
/// # Errors
/// Same as [`try_resume_deployment`].
pub fn try_resume_deployment_observed(
    stream: &dyn ChunkStream,
    spec: &DeploymentSpec,
    config: &DeploymentConfig,
    metrics: Metrics,
) -> Result<DeploymentResult, DeploymentError> {
    let tracer = if config.collect_traces {
        Tracer::collecting()
    } else {
        Tracer::disabled()
    };
    try_resume_deployment_traced(stream, spec, config, metrics, tracer)
}

/// [`try_resume_deployment_observed`] recording causal spans into an
/// explicit [`Tracer`] handle. The resumed trace is rooted at
/// `deployment.run` with a `deployment.replay` child covering state
/// reconstruction.
///
/// # Errors
/// Same as [`try_resume_deployment`].
pub fn try_resume_deployment_traced(
    stream: &dyn ChunkStream,
    spec: &DeploymentSpec,
    config: &DeploymentConfig,
    metrics: Metrics,
    tracer: Tracer,
) -> Result<DeploymentResult, DeploymentError> {
    let wall = Stopwatch::start();
    let Some(ckpt_cfg) = &config.checkpoint else {
        return Err(DeploymentError::NoCheckpoint(
            "DeploymentConfig.checkpoint is not set".into(),
        ));
    };
    let dir = CheckpointDir::open(&ckpt_cfg.dir, ckpt_cfg.keep)?;
    let Some((seq, version, payload)) = dir.latest_valid_versioned()? else {
        return Err(DeploymentError::NoCheckpoint(format!(
            "no valid checkpoint in {}",
            ckpt_cfg.dir.display()
        )));
    };
    let ckpt = DeploymentCheckpoint::decode_versioned(version, &payload)?;
    let run_span = tracer.root("deployment.run");
    let run_ctx = run_span.context();

    // The dead process already consumed its crash countdown — a resumed run
    // clears the crash site (disk/worker faults keep injecting, keyed
    // purely by (seed, site, key, attempt), so recovery behaviour of the
    // remaining chunks is unchanged).
    let mut plan = config.faults;
    plan.crash_site = None;
    let strategy = match config.mode {
        DeploymentMode::Continuous { strategy, .. } => strategy,
        _ => SamplingStrategy::Uniform,
    };

    // ---- Replay: rebuild the store (raw history, feature cache, spill
    // files) by re-running the ingest/fit-transform fold up to the
    // checkpoint. The checkpoint holds chunk *references* only (§3.4) —
    // evicted features re-materialize on demand, cached and spilled ones
    // are reproduced here bit-identically by the deterministic pipeline.
    // Counters and statistics accumulated during replay are throwaway; the
    // checkpointed values are restored as authoritative afterwards.
    let replay_hook: Arc<dyn FaultHook> = if plan.is_active() {
        Arc::new(FaultInjector::new(plan))
    } else {
        Arc::new(NoFaults)
    };
    let mut dm = if config.spill_to_disk {
        DataManager::with_spill(
            config.optimization.budget,
            strategy,
            config.seed,
            private_spill_dir(),
            Arc::clone(&replay_hook),
            RetryPolicy::default(),
        )?
    } else {
        DataManager::new(config.optimization.budget, strategy, config.seed)
    };
    let replay_span = tracer.child_of("deployment.replay", run_ctx);
    let mut pipeline = spec.try_build_pipeline()?;
    for raw in stream.initial() {
        let fc = pipeline.fit_transform_chunk(&raw);
        dm.ingest_raw(raw)?;
        dm.store_features(fc)?;
    }
    dm.store_mut().reset_stats();
    for idx in stream.deployment_range() {
        if idx as u64 > ckpt.chunk_idx {
            break;
        }
        let raw = stream.chunk(idx);
        dm.ingest_raw(raw.clone())?;
        let fc = pipeline.fit_transform_chunk(&raw);
        dm.store_features(fc)?;
    }
    replay_span.finish();

    // ---- Validate against the spec/stream before touching anything that
    // asserts: a checkpoint from a different pipeline or stream surfaces
    // as a typed Corrupt error, never a panic or a silent restart.
    let expected_states = pipeline.component_states().len();
    if ckpt.component_states.len() != expected_states {
        return Err(StorageError::Corrupt(format!(
            "checkpoint has {} component states, the spec's pipeline has {expected_states} \
             (wrong spec for this checkpoint?)",
            ckpt.component_states.len()
        ))
        .into());
    }
    let replayed_manifest: Vec<u64> = dm
        .store()
        .materialized_timestamps()
        .into_iter()
        .map(|t| t.0)
        .collect();
    if replayed_manifest != ckpt.manifest {
        return Err(StorageError::Corrupt(format!(
            "replayed materialization manifest ({} chunks) diverges from the checkpoint \
             ({} chunks) — stream or config mismatch",
            replayed_manifest.len(),
            ckpt.manifest.len()
        ))
        .into());
    }

    // ---- Restore authoritative state over the replayed skeleton.
    metrics.restore_from(&ckpt.metrics);
    pipeline.restore_component_states(&ckpt.component_states)?;
    pipeline.set_counters(ckpt.pipeline_counters);
    let trainer = SgdTrainer::restore(
        LinearModel::with_weights(DenseVector::new(ckpt.weights), spec.sgd.loss),
        OptimizerState::from_parts(
            spec.sgd.optimizer,
            ckpt.opt_t,
            DenseVector::new(ckpt.opt_acc1),
            DenseVector::new(ckpt.opt_acc2),
        ),
        spec.sgd.regularizer,
        ckpt.points_seen,
    );
    let hook: Arc<dyn FaultHook> = if plan.is_active() {
        Arc::new(FaultInjector::with_state(
            plan,
            ckpt.fault_stats,
            ckpt.fault_epoch,
        ))
    } else {
        Arc::new(NoFaults)
    };
    dm.set_hook(Arc::clone(&hook));
    dm.set_metrics(metrics.clone());
    dm.set_sampler_rng_state(ckpt.sampler_rng);
    dm.store_mut().restore_stats(ckpt.store_stats);
    dm.restore_tiered_stats(ckpt.tiered_stats);
    let pm = PipelineManager::with_trainer(pipeline, trainer, spec.online_batch)
        .with_engine(config.engine)
        .with_fault_hook(Arc::clone(&hook))
        .with_metrics(metrics.clone())
        .with_tracer(tracer.clone());
    let evaluator = PrequentialEvaluator::restore(
        spec.metric,
        ckpt.eval_count,
        ckpt.eval_acc,
        ckpt.eval_curve,
        0,
    );
    let ledger = CostLedger::from_parts(config.cost_model, ckpt.accounted, ckpt.cost_curve);
    let mut drift_monitor = DriftDetector::new(60, 12, 2.0, 3.0);
    drift_monitor.restore_windows(ckpt.drift_baseline, ckpt.drift_recent);
    let sim = Arc::new(VirtualClock::new());
    sim.advance_secs(ckpt.now_secs);
    metrics.counter("checkpoint.restores").inc();
    metrics.event(
        "checkpoint.restore",
        format!(
            "resumed from checkpoint {seq} after chunk {}",
            ckpt.chunk_idx
        ),
    );
    // WAL recovery: everything durable past the checkpoint replays into
    // the loop; the stream covers records the WAL lost (group-commit
    // buffers, exhausted retries). The writer continues past the highest
    // recovered sequence so replayed appends are idempotently skipped.
    let wal = match &config.wal {
        Some(wc) => {
            let rt = open_wal(wc, &hook, &sim, &metrics, ckpt.chunk_idx + 1, true)?;
            metrics.event(
                "wal.recover",
                format!(
                    "replaying {} records after chunk {}",
                    rt.replay.len(),
                    ckpt.chunk_idx
                ),
            );
            Some(rt)
        }
        None => None,
    };

    let st = LoopState {
        dm,
        pm,
        evaluator,
        proactive: if config.optimization.online_stats {
            ProactiveTrainer::new()
        } else {
            ProactiveTrainer::without_online_stats()
        },
        ledger,
        sim,
        chunks_since_training: ckpt.chunks_since_training as usize,
        last_training_secs: ckpt.last_training_secs,
        last_training_at_secs: ckpt.last_training_at_secs,
        proactive_runs: ckpt.proactive_runs,
        proactive_secs_sum: ckpt.proactive_secs_sum,
        retrain_runs: ckpt.retrain_runs,
        drift_monitor,
        drift_level: ckpt.drift_level,
        prev_acc: ckpt.prev_acc,
        prev_count: ckpt.prev_count,
        initial_report: ckpt.initial_report,
        checkpoint_stats: CheckpointStats {
            writes: ckpt.ckpt_writes,
            bytes_written: ckpt.ckpt_bytes,
            restores: ckpt.ckpt_restores + 1,
        },
        wal,
    };
    // Publish the *restored* pair before re-entering the loop: a server
    // attached to a resumed deployment serves the checkpointed version
    // first and never answers from a pre-crash stale snapshot.
    if let Some(server) = &config.serving {
        publish_serving(server, &st.pm, &metrics, "restore");
    }
    run_chunk_loop(
        stream,
        spec,
        config,
        hook,
        metrics,
        tracer,
        wall,
        run_span,
        st,
        (ckpt.chunk_idx + 1) as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{taxi_spec, url_spec, SpecScale};

    fn tiny_url() -> (cdp_datagen::url::UrlGenerator, DeploymentSpec) {
        url_spec(SpecScale::Tiny)
    }

    fn tiny_taxi() -> (cdp_datagen::taxi::TaxiGenerator, DeploymentSpec) {
        taxi_spec(SpecScale::Tiny)
    }

    #[test]
    fn online_deployment_runs_and_learns() {
        let (stream, spec) = tiny_url();
        let result = run_deployment(&stream, &spec, &DeploymentConfig::online());
        assert_eq!(result.approach, "Online");
        assert!(result.queries_answered > 0);
        assert!(result.final_error < 0.5, "error {}", result.final_error);
        assert_eq!(result.proactive_runs, 0);
        assert_eq!(result.retrain_runs, 0);
        assert!(result.total_secs > 0.0);
        assert_eq!(result.error_curve.len(), result.cost_curve.len());
    }

    #[test]
    fn continuous_runs_proactive_training() {
        let (stream, spec) = tiny_url();
        let config = DeploymentConfig::continuous(2, 3, SamplingStrategy::TimeBased);
        let result = run_deployment(&stream, &spec, &config);
        assert!(result.proactive_runs > 0);
        assert!(result.avg_proactive_secs > 0.0);
        assert!(result.empirical_mu > 0.9, "unbounded budget ⇒ μ ≈ 1");
    }

    #[test]
    fn periodical_retrains_and_costs_more_than_continuous() {
        let (stream, spec) = tiny_url();
        let periodical = run_deployment(&stream, &spec, &DeploymentConfig::periodical(5));
        assert!(periodical.retrain_runs > 0);
        let continuous = run_deployment(
            &stream,
            &spec,
            &DeploymentConfig::continuous(2, 3, SamplingStrategy::TimeBased),
        );
        assert!(
            periodical.total_secs > continuous.total_secs,
            "periodical {} must exceed continuous {}",
            periodical.total_secs,
            continuous.total_secs
        );
        let online = run_deployment(&stream, &spec, &DeploymentConfig::online());
        assert!(continuous.total_secs > online.total_secs);
    }

    #[test]
    fn limited_budget_lowers_mu() {
        let (stream, spec) = tiny_url();
        let mut config = DeploymentConfig::continuous(2, 4, SamplingStrategy::Uniform);
        config.optimization.budget = StorageBudget::MaxChunks(5);
        let result = run_deployment(&stream, &spec, &config);
        assert!(result.empirical_mu < 1.0);
        assert!(result.store_stats.feature_misses > 0);
    }

    #[test]
    fn no_optimization_costs_more() {
        let (stream, spec) = tiny_url();
        let base = DeploymentConfig::continuous(2, 4, SamplingStrategy::TimeBased);
        let with_opt = run_deployment(&stream, &spec, &base);
        let mut no_opt_cfg = base;
        no_opt_cfg.optimization.online_stats = false;
        let without = run_deployment(&stream, &spec, &no_opt_cfg);
        assert!(
            without.total_secs > with_opt.total_secs,
            "NoOptimization {} must exceed optimized {}",
            without.total_secs,
            with_opt.total_secs
        );
    }

    #[test]
    fn taxi_deployment_regression_error_reasonable() {
        let (stream, spec) = tiny_taxi();
        let result = run_deployment(
            &stream,
            &spec,
            &DeploymentConfig::continuous(2, 3, SamplingStrategy::Uniform),
        );
        // RMSLE on log1p(duration): the constant predictor sits around 6.5;
        // anything below 1.0 means the model learned structure.
        assert!(result.final_error < 1.0, "RMSLE = {}", result.final_error);
    }

    #[test]
    fn deterministic_given_seed() {
        let (stream, spec) = tiny_url();
        let config = DeploymentConfig::continuous(3, 2, SamplingStrategy::Uniform);
        let a = run_deployment(&stream, &spec, &config);
        let b = run_deployment(&stream, &spec, &config);
        assert_eq!(a.final_error, b.final_error);
        assert_eq!(a.total_secs, b.total_secs);
        assert_eq!(a.proactive_runs, b.proactive_runs);
    }

    #[test]
    fn drift_adaptive_mode_runs_end_to_end() {
        let (stream, spec) = tiny_url();
        let mut config = DeploymentConfig::online();
        config.mode = DeploymentMode::Continuous {
            scheduler: Scheduler::DriftAdaptive { every_chunks: 4 },
            sample_chunks: 3,
            strategy: SamplingStrategy::TimeBased,
        };
        let result = run_deployment(&stream, &spec, &config);
        assert!(result.proactive_runs > 0);
        assert!(result.final_error < 0.5);
        // Never more than one training per chunk.
        assert!(result.proactive_runs <= (stream.total_chunks() - stream.initial_chunks()) as u64);
    }

    #[test]
    fn threaded_engine_reproduces_sequential_deployment() {
        // All three deployment modes must be bit-identical across engines:
        // same prequential error curve, same model weights, same accounted
        // cost. Parallelism only changes wall-clock time.
        let (stream, spec) = tiny_url();
        let mut limited_continuous = DeploymentConfig::continuous(2, 3, SamplingStrategy::Uniform);
        // A bounded cache forces re-materialization through the engine.
        limited_continuous.optimization.budget = StorageBudget::MaxChunks(5);
        let configs = [
            DeploymentConfig::online(),
            DeploymentConfig::periodical(5),
            DeploymentConfig::continuous(2, 3, SamplingStrategy::TimeBased),
            limited_continuous,
        ];
        for base in configs {
            let sequential = run_deployment(&stream, &spec, &base);
            let mut threaded_cfg = base.clone();
            threaded_cfg.engine = ExecutionEngine::Threaded { workers: 4 };
            let threaded = run_deployment(&stream, &spec, &threaded_cfg);
            let mode = base.mode.name();
            assert_eq!(
                sequential.final_error.to_bits(),
                threaded.final_error.to_bits(),
                "{mode}: final error"
            );
            assert_eq!(
                sequential.error_curve, threaded.error_curve,
                "{mode}: error curve"
            );
            assert_eq!(
                sequential.final_weights, threaded.final_weights,
                "{mode}: model weights"
            );
            assert_eq!(
                sequential.total_secs.to_bits(),
                threaded.total_secs.to_bits(),
                "{mode}: accounted cost"
            );
            assert_eq!(sequential.retrain_runs, threaded.retrain_runs);
            assert_eq!(sequential.proactive_runs, threaded.proactive_runs);
        }
    }

    #[test]
    fn cold_restart_differs_from_warm() {
        let (stream, spec) = tiny_url();
        let warm = run_deployment(&stream, &spec, &DeploymentConfig::periodical(5));
        let mut cold_cfg = DeploymentConfig::periodical(5);
        cold_cfg.mode = DeploymentMode::Periodical {
            retrain_every: 5,
            warm_start: false,
        };
        let cold = run_deployment(&stream, &spec, &cold_cfg);
        assert_eq!(warm.retrain_runs, cold.retrain_runs);
        // Cold restarts refit statistics (update passes) — strictly more work.
        assert!(cold.preprocessing_secs > warm.preprocessing_secs);
    }
}
