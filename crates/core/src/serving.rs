//! Concurrent model serving: answering prediction queries in real time
//! while the platform keeps training.
//!
//! The deployment drivers in [`crate::deployment`] interleave serving and
//! training on one thread with simulated time; [`ModelServer`] is the
//! wall-clock counterpart — a thread-safe serving front that any number of
//! query threads can call while the training thread publishes updated
//! `(pipeline, model)` pairs with an atomic version swap. This is the piece
//! that makes the paper's claim operational: because proactive training
//! produces a new model in milliseconds, `publish` is frequent and cheap,
//! and queries never wait on a retraining (§5.5).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use cdp_ml::LinearModel;
use cdp_pipeline::Pipeline;
use cdp_storage::Record;

/// A served prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The model's raw margin (classification: sign is the class;
    /// regression: the predicted value).
    pub value: f64,
    /// Version of the `(pipeline, model)` pair that served the query.
    pub version: u64,
}

#[derive(Debug)]
struct Deployed {
    pipeline: Pipeline,
    model: LinearModel,
    version: u64,
}

/// A thread-safe serving front over a deployed pipeline + model.
///
/// Cloning the server is cheap (it is an `Arc` handle); clones share the
/// deployed pair, so one thread can `publish` while others `predict`.
#[derive(Debug, Clone)]
pub struct ModelServer {
    deployed: Arc<RwLock<Deployed>>,
    queries: Arc<AtomicU64>,
    rejected: Arc<AtomicU64>,
}

impl ModelServer {
    /// Deploys the initial `(pipeline, model)` pair as version 1.
    ///
    /// The model is grown to the pipeline's current output dimension so a
    /// concurrent query can never outrun the weights.
    pub fn new(pipeline: Pipeline, mut model: LinearModel) -> Self {
        model.grow_to(pipeline.dim());
        Self {
            deployed: Arc::new(RwLock::new(Deployed {
                pipeline,
                model,
                version: 1,
            })),
            queries: Arc::new(AtomicU64::new(0)),
            rejected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Answers one prediction query with the currently deployed pair.
    /// Returns `None` (and counts a rejection) when the record is malformed
    /// or filtered out by a pipeline cleaning stage.
    pub fn predict(&self, record: &Record) -> Option<Prediction> {
        let guard = self.deployed.read();
        let point = match guard.pipeline.transform_query(record) {
            Some(p) => p,
            None => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let value = guard.model.margin_ref(&point.features);
        self.queries.fetch_add(1, Ordering::Relaxed);
        Some(Prediction {
            value,
            version: guard.version,
        })
    }

    /// Atomically swaps in an updated `(pipeline, model)` pair (e.g. after
    /// a proactive-training instance) and returns the new version number.
    pub fn publish(&self, pipeline: Pipeline, mut model: LinearModel) -> u64 {
        model.grow_to(pipeline.dim());
        let mut guard = self.deployed.write();
        guard.pipeline = pipeline;
        guard.model = model;
        guard.version += 1;
        guard.version
    }

    /// Currently deployed version.
    pub fn version(&self) -> u64 {
        self.deployed.read().version
    }

    /// Queries answered so far.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Malformed/filtered queries rejected so far.
    pub fn queries_rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_ml::LossKind;
    use cdp_pipeline::encode::DenseEncoder;
    use cdp_pipeline::parser::SchemaParser;
    use cdp_pipeline::scale::StandardScaler;
    use cdp_pipeline::PipelineBuilder;
    use cdp_storage::{RawChunk, Schema, Timestamp, Value};

    fn pipeline() -> Pipeline {
        let schema = Schema::new(["y", "x"]);
        let built = PipelineBuilder::new(SchemaParser::new(schema, "y", &["x"], None))
            .add(StandardScaler::new())
            .encoder(DenseEncoder::new(1));
        match built {
            Ok(p) => p,
            Err(e) => panic!("components are incremental: {e}"),
        }
    }

    fn warmed_pipeline() -> Pipeline {
        let mut p = pipeline();
        let records = (0..8)
            .map(|i| Record::new(vec![Value::Num(i as f64), Value::Num(i as f64)]))
            .collect();
        p.fit_transform_chunk(&RawChunk::new(Timestamp(0), records));
        p
    }

    fn record(x: f64) -> Record {
        Record::new(vec![Value::Num(0.0), Value::Num(x)])
    }

    #[test]
    fn serves_predictions_and_counts() {
        let model = LinearModel::zeros(2, LossKind::Squared);
        let server = ModelServer::new(warmed_pipeline(), model);
        let p = server.predict(&record(1.0)).expect("valid query");
        assert_eq!(p.version, 1);
        assert_eq!(server.queries_served(), 1);

        // Malformed query counts as rejected.
        assert!(server
            .predict(&Record::new(vec![Value::Text("bad".into())]))
            .is_none());
        assert_eq!(server.queries_rejected(), 1);
    }

    #[test]
    fn publish_bumps_version_and_changes_predictions() {
        let server = ModelServer::new(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared));
        let before = server.predict(&record(2.0)).expect("valid");
        assert_eq!(before.value, 0.0);

        let mut trained = LinearModel::zeros(2, LossKind::Squared);
        trained.weights_mut().set(0, 1.0).expect("bias slot");
        let v = server.publish(warmed_pipeline(), trained);
        assert_eq!(v, 2);
        let after = server.predict(&record(2.0)).expect("valid");
        assert_eq!(after.version, 2);
        assert_ne!(after.value, before.value);
    }

    #[test]
    fn concurrent_queries_during_publishes() {
        let server = ModelServer::new(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = server.clone();
                std::thread::spawn(move || {
                    let mut last_version = 0;
                    for i in 0..500 {
                        let p = s.predict(&record(i as f64)).expect("valid query");
                        // Versions move forward, never backward.
                        assert!(p.version >= last_version);
                        last_version = p.version;
                    }
                    last_version
                })
            })
            .collect();
        // Publisher thread: keep deploying new versions while readers run.
        let publisher = {
            let s = server.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    s.publish(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared));
                }
            })
        };
        publisher.join().expect("publisher lives");
        for r in readers {
            let last = r.join().expect("reader lives");
            assert!(last >= 1);
        }
        assert_eq!(server.queries_served(), 4 * 500);
        assert_eq!(server.version(), 51);
    }
}
