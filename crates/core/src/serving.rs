//! Sharded, lock-free model serving: answering prediction queries in real
//! time while the platform keeps training.
//!
//! The deployment drivers in [`crate::deployment`] interleave serving and
//! training on one thread with simulated time; this module is the
//! wall-clock counterpart — the piece that makes the paper's claim
//! operational: because proactive training produces a new model in
//! milliseconds, `publish` is frequent and cheap, and queries never wait on
//! a retraining (§5.5).
//!
//! Three layers (DESIGN.md §14):
//!
//! * **Epoch-pinned snapshots** — every shard holds a ring of
//!   double-buffered slots, each an immutable `Arc<ServingSnapshot>` (a
//!   coherent `(pipeline, model, version)` triple). Readers never take a
//!   lock: they pin a slot with an atomic counter, re-check the current
//!   index, clone the `Arc`, and unpin. Publishers rotate to the next slot
//!   only after its pin count drains, so a slot is never overwritten while
//!   a reader is cloning from it.
//! * **Micro-batching** — each shard owns a bounded MPSC queue of pending
//!   queries. A batch flushes when it reaches `max_batch` (inline, on the
//!   enqueueing thread) or when its oldest entry exceeds `max_delay_secs`
//!   (a deadline flush, from [`ModelServer::flush_due`] or the background
//!   [`FlusherHandle`]); the whole batch is scored against **one** snapshot
//!   through [`ExecutionEngine::map_indexed`]-style indexed maps, reusing
//!   the work-stealing pool.
//! * **Routing** — a [`ServingRouter`] multiplexes many concurrent
//!   deployments over one engine with per-route latency histograms,
//!   queue-depth gauges, and the `serving.*` SLA alert rules
//!   ([`AlertMonitor::serving_defaults`]).

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cdp_engine::ExecutionEngine;
use cdp_faults::{FaultHook, NoFaults};
use cdp_ml::LinearModel;
use cdp_obs::{Alert, AlertMonitor, Clock, Counter, Gauge, Histogram, Metrics, WallClock};
use cdp_pipeline::Pipeline;
use cdp_storage::Record;

/// A served prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The model's raw margin (classification: sign is the class;
    /// regression: the predicted value).
    pub value: f64,
    /// Version of the `(pipeline, model)` pair that served the query.
    pub version: u64,
}

/// One immutable published `(pipeline, model, version)` triple.
///
/// Snapshots are never mutated after publication — readers share them via
/// `Arc`, so a query scored against a snapshot can never observe the
/// pipeline of one version and the model of another.
#[derive(Debug, Clone)]
pub struct ServingSnapshot {
    /// The transform-only pipeline of this version.
    pub pipeline: Pipeline,
    /// The model of this version, grown to the pipeline's output dimension.
    pub model: LinearModel,
    /// Monotonically increasing publication number (initial deploy = 1).
    pub version: u64,
}

/// Order-independent fingerprint of a weight vector's exact bit patterns
/// (FNV-1a over `f64::to_bits`, length-mixed). Two weight vectors fingerprint
/// equal iff they are bit-identical — used by the publish event log and the
/// resume tests to name *which* model a publish carried.
pub fn weights_fingerprint(weights: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in weights {
        for byte in w.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h ^ (weights.len() as u64)
}

/// Slots per shard ring. Two is the double buffer; two more absorb a
/// publish storm without the writer ever waiting on a reader that pinned
/// several versions ago.
const SNAPSHOT_SLOTS: usize = 4;

struct SnapshotSlot {
    /// Readers currently between pin and unpin on this slot.
    pins: AtomicUsize,
    /// The slot's snapshot. Written only by the (externally serialized)
    /// publisher while `pins == 0` and the slot is not current.
    snap: UnsafeCell<Arc<ServingSnapshot>>,
}

/// A lock-free publication cell: a ring of [`SNAPSHOT_SLOTS`] snapshot
/// slots plus the current index.
///
/// **Reader protocol** (`load`): read `current`, pin that slot
/// (`pins += 1`), re-read `current`; if unchanged, clone the slot's `Arc`
/// and unpin, else unpin and retry. Wait-free in practice: a retry needs a
/// concurrent publish between the two reads, and the publisher must lap the
/// whole ring before reusing the observed slot.
///
/// **Writer protocol** (`store`, callers serialized by the server's publish
/// mutex): pick `next = (current + 1) % SLOTS`, spin until
/// `pins(next) == 0`, overwrite the slot, then flip `current`.
///
/// Memory reclamation argument: the slot's old `Arc` is dropped by the
/// overwrite, but the snapshot it points to is freed only when the last
/// reader clone drops — the pin protects the *read of the `Arc` cell
/// itself*, not the snapshot lifetime. A reader holding a pin either saw
/// `current == slot` after pinning (so the publisher — which flips
/// `current` away before the slot can become a write target again, and
/// waits for `pins == 0` before writing) cannot be overwriting it, or it
/// observes the moved `current` on the re-check and retries without
/// touching the cell. All operations are `SeqCst`, so "pin then re-check"
/// and "wait-for-drain then write then flip" cannot reorder.
struct SnapshotCell {
    current: AtomicUsize,
    slots: [SnapshotSlot; SNAPSHOT_SLOTS],
}

// SAFETY: the `UnsafeCell` is only read while its slot is pinned and only
// written by an externally serialized publisher after the pin count drains
// (see the protocol above), so there is never a concurrent read/write of
// the cell contents. `Arc<ServingSnapshot>` itself is Send + Sync.
unsafe impl Send for SnapshotCell {}
// SAFETY: as above — shared access is coordinated by the pin/flip protocol.
unsafe impl Sync for SnapshotCell {}

impl SnapshotCell {
    fn new(initial: &Arc<ServingSnapshot>) -> Self {
        Self {
            current: AtomicUsize::new(0),
            slots: std::array::from_fn(|_| SnapshotSlot {
                pins: AtomicUsize::new(0),
                snap: UnsafeCell::new(Arc::clone(initial)),
            }),
        }
    }

    /// Lock-free coherent read of the current snapshot.
    fn load(&self) -> Arc<ServingSnapshot> {
        loop {
            let i = self.current.load(Ordering::SeqCst);
            self.slots[i].pins.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == i {
                // SAFETY: the slot is pinned and `current` still points at
                // it, so per the writer protocol no publisher is writing
                // this cell until our unpin below is visible.
                let snap = unsafe { (*self.slots[i].snap.get()).clone() };
                self.slots[i].pins.fetch_sub(1, Ordering::SeqCst);
                return snap;
            }
            // A publish moved on while we pinned; retry on the new slot.
            self.slots[i].pins.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes a new snapshot. Callers must be serialized (the server
    /// holds its publish mutex); readers are never blocked.
    fn store(&self, snap: Arc<ServingSnapshot>) {
        let cur = self.current.load(Ordering::SeqCst);
        let next = (cur + 1) % SNAPSHOT_SLOTS;
        // Drain stragglers still pinned on the target slot. Pins last for
        // one `Arc` clone, so this wait is nanoseconds; a reader can only
        // still be pinned here if it read `current == next` a full ring
        // rotation ago and has not yet re-checked.
        let mut spins = 0u32;
        while self.slots[next].pins.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: the slot is not `current` (the publisher has not flipped
        // yet and publishers are serialized) and its pin count is zero, so
        // no reader is inside the cell; any reader that pins from now on
        // re-checks `current`, finds it ≠ `next` until the flip below, and
        // retries without reading the cell.
        unsafe {
            *self.slots[next].snap.get() = snap;
        }
        self.current.store(next, Ordering::SeqCst);
    }
}

/// Micro-batching knobs for one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Flush as soon as a shard's queue reaches this many queries (the
    /// flush runs inline on the enqueueing thread).
    pub max_batch: usize,
    /// Deadline: a queued query is flushed no later than this many seconds
    /// after enqueue (enforced by [`ModelServer::flush_due`] /
    /// [`FlusherHandle`]). Worst-case added latency is therefore
    /// `max_delay_secs` + one batch-scoring pass.
    pub max_delay_secs: f64,
    /// Bound on queued queries per shard; `enqueue` beyond it returns
    /// [`QueueOverflow`] and counts `serving.queue_overflow`.
    pub capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay_secs: 0.002,
            capacity: 1024,
        }
    }
}

/// `enqueue` rejected a query because the shard's bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueOverflow;

impl fmt::Display for QueueOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serving micro-batch queue is full")
    }
}

impl std::error::Error for QueueOverflow {}

/// A claim on one enqueued query's eventual result.
#[derive(Debug, Clone)]
pub struct Ticket(Arc<TicketInner>);

#[derive(Debug)]
struct TicketInner {
    /// `None` = pending; `Some(outcome)` = fulfilled (outcome `None` =
    /// rejected or lost to a fatal batch failure).
    slot: Mutex<Option<Option<Prediction>>>,
    ready: Condvar,
}

impl Ticket {
    fn new() -> Self {
        Self(Arc::new(TicketInner {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }))
    }

    fn fulfil(&self, outcome: Option<Prediction>) {
        let mut slot = self.0.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(outcome);
        self.0.ready.notify_all();
    }

    /// Blocks until the query's batch is flushed; `None` means the query
    /// was rejected (malformed / filtered) or its batch failed fatally.
    pub fn wait(&self) -> Option<Prediction> {
        let mut slot = self.0.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = *slot {
                return outcome;
            }
            slot = self.0.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking probe: `None` while the query is still queued.
    pub fn try_take(&self) -> Option<Option<Prediction>> {
        *self.0.slot.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct PendingQuery {
    record: Record,
    ticket: Ticket,
    enqueued_secs: f64,
}

struct Shard {
    cell: SnapshotCell,
    served: AtomicU64,
    rejected: AtomicU64,
    queue: Mutex<VecDeque<PendingQuery>>,
}

/// Cached cdp-obs handles: resolved once at build time so the hot path
/// never takes the registry's name-resolution lock.
struct ServerMetrics {
    served: Counter,
    route_served: Counter,
    rejected: Counter,
    route_rejected: Counter,
    overflow: Counter,
    publishes: Counter,
    batch_failures: Counter,
    latency: Histogram,
    route_latency: Histogram,
    batch_size: Histogram,
    queue_depth: Gauge,
    version: Gauge,
}

impl ServerMetrics {
    fn resolve(metrics: &Metrics, route: &str) -> Self {
        Self {
            served: metrics.counter("serving.served"),
            route_served: metrics.counter(&format!("serving.{route}.served")),
            rejected: metrics.counter("serving.rejected"),
            route_rejected: metrics.counter(&format!("serving.{route}.rejected")),
            overflow: metrics.counter("serving.queue_overflow"),
            publishes: metrics.counter("serving.publishes"),
            batch_failures: metrics.counter("serving.batch_failures"),
            latency: metrics.histogram("serving.latency_secs"),
            route_latency: metrics.histogram(&format!("serving.{route}.latency_secs")),
            batch_size: metrics.histogram_with_bounds(
                "serving.batch_size",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            ),
            queue_depth: metrics.gauge(&format!("serving.{route}.queue_depth")),
            version: metrics.gauge(&format!("serving.{route}.version")),
        }
    }
}

struct ServerInner {
    route: String,
    shards: Vec<Shard>,
    /// Latest published version (readers see per-shard versions via their
    /// snapshots; this is the publisher-side source of truth).
    version: AtomicU64,
    engine: ExecutionEngine,
    hook: Arc<dyn FaultHook>,
    metrics: Metrics,
    obs: ServerMetrics,
    clock: Arc<dyn Clock>,
    batch: BatchConfig,
    /// Serializes publishers; readers never touch it.
    publish_mu: Mutex<()>,
    /// Clock seconds of the last publish, as `f64` bits.
    last_publish_secs: AtomicU64,
    /// Queries handed to scoring (predict calls + flushed batch entries).
    attempts: AtomicU64,
    /// Queries turned away by a full micro-batch queue (never scored, so
    /// not part of `attempts`).
    overflowed: AtomicU64,
    /// Queries lost to a fatal (past the restart budget) batch failure.
    batch_failed: AtomicU64,
}

/// A sharded, lock-free serving front over a deployed pipeline + model.
///
/// Cloning the server is cheap (it is an `Arc` handle); clones share the
/// deployed snapshots, so one thread can [`publish`](ModelServer::publish)
/// while others [`predict`](ModelServer::predict). Readers are lock-free:
/// `predict` pins an epoch slot, clones the current snapshot `Arc`, and
/// scores against that immutable triple — a concurrent publish can never
/// tear the `(pipeline, model, version)` a query observes.
///
/// Each calling thread is sticky to one shard (round-robin assignment on
/// first use), so per-thread version observations are monotone and shard
/// counters stay contention-free.
///
/// ### Accounting invariant
///
/// `attempts() == queries_served() + queries_rejected() + batch_failures()`
/// — every query handed to scoring is counted exactly once, in exactly one
/// bucket, and the `serving.served` / `serving.rejected` cdp-obs counters
/// mirror the first two exactly (when metrics are enabled). Queue overflows
/// are counted separately ([`queue_overflows`](ModelServer::queue_overflows)
/// / `serving.queue_overflow`): an overflowed query was never scored.
#[derive(Clone)]
pub struct ModelServer {
    inner: Arc<ServerInner>,
}

impl fmt::Debug for ModelServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelServer")
            .field("route", &self.inner.route)
            .field("version", &self.version())
            .field("shards", &self.inner.shards.len())
            .field("engine", &self.inner.engine.name())
            .finish()
    }
}

/// Builder for [`ModelServer`] (all knobs optional; `build` deploys the
/// initial pair as version 1).
pub struct ServerBuilder {
    pipeline: Pipeline,
    model: LinearModel,
    route: String,
    shards: usize,
    engine: ExecutionEngine,
    hook: Arc<dyn FaultHook>,
    metrics: Metrics,
    clock: Arc<dyn Clock>,
    batch: BatchConfig,
}

impl ServerBuilder {
    /// Route name used in per-route metric names (default `"default"`).
    #[must_use]
    pub fn route(mut self, name: &str) -> Self {
        self.route = name.to_owned();
        self
    }

    /// Number of shards (≥ 1; default 4). More shards spread reader pins
    /// and queue locks; publishes touch every shard.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Engine for batch scoring (default sequential).
    #[must_use]
    pub fn engine(mut self, engine: ExecutionEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Fault hook consulted by batch-scoring engine maps (default
    /// [`NoFaults`]), so seeded worker panics can fire while serving.
    #[must_use]
    pub fn fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.hook = hook;
        self
    }

    /// Metrics handle for the `serving.*` series (default disabled).
    #[must_use]
    pub fn metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Clock for latency/deadline/staleness measurements (default
    /// [`WallClock`]; inject a `VirtualClock` for deterministic tests).
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Micro-batching knobs (default [`BatchConfig::default`]).
    #[must_use]
    pub fn batching(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Deploys the initial `(pipeline, model)` pair as version 1.
    pub fn build(self) -> ModelServer {
        let mut model = self.model;
        model.grow_to(self.pipeline.dim());
        let initial = Arc::new(ServingSnapshot {
            pipeline: self.pipeline,
            model,
            version: 1,
        });
        let shards = (0..self.shards)
            .map(|_| Shard {
                cell: SnapshotCell::new(&initial),
                served: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                queue: Mutex::new(VecDeque::new()),
            })
            .collect();
        let obs = ServerMetrics::resolve(&self.metrics, &self.route);
        obs.version.set(1.0);
        let now = self.clock.now_secs();
        ModelServer {
            inner: Arc::new(ServerInner {
                route: self.route,
                shards,
                version: AtomicU64::new(1),
                engine: self.engine,
                hook: self.hook,
                metrics: self.metrics,
                obs,
                clock: self.clock,
                batch: self.batch,
                publish_mu: Mutex::new(()),
                last_publish_secs: AtomicU64::new(now.to_bits()),
                attempts: AtomicU64::new(0),
                overflowed: AtomicU64::new(0),
                batch_failed: AtomicU64::new(0),
            }),
        }
    }
}

/// Scores one record against one snapshot: the single scoring function
/// shared by `predict` and the batched path, so batched results are
/// bit-identical to unbatched ones by construction. `None` = rejected
/// (malformed/filtered record, or — defensively — a feature vector wider
/// than the snapshot's weights, which `publish`'s `grow_to` makes
/// unreachable but which must reject rather than panic in `margin_ref`).
fn score_raw(snap: &ServingSnapshot, record: &Record) -> Option<f64> {
    let point = snap.pipeline.transform_query(record)?;
    if point.features.dim() > snap.model.dim() {
        return None;
    }
    Some(snap.model.margin_ref(&point.features))
}

impl ModelServer {
    /// Deploys the initial `(pipeline, model)` pair as version 1 with
    /// default configuration (4 shards, sequential scoring engine, metrics
    /// disabled). Use [`ModelServer::builder`] for the full configuration
    /// surface.
    pub fn new(pipeline: Pipeline, model: LinearModel) -> Self {
        Self::builder(pipeline, model).build()
    }

    /// Starts configuring a server around an initial `(pipeline, model)`.
    pub fn builder(pipeline: Pipeline, model: LinearModel) -> ServerBuilder {
        ServerBuilder {
            pipeline,
            model,
            route: "default".to_owned(),
            shards: 4,
            engine: ExecutionEngine::Sequential,
            hook: Arc::new(NoFaults),
            metrics: Metrics::disabled(),
            clock: Arc::new(WallClock::new()),
            batch: BatchConfig::default(),
        }
    }

    /// Route name (used in per-route metric names).
    pub fn route(&self) -> &str {
        &self.inner.route
    }

    /// The calling thread's sticky shard index (round-robin on first use).
    fn shard_index(&self) -> usize {
        static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static THREAD_SLOT: std::cell::Cell<usize> =
                const { std::cell::Cell::new(usize::MAX) };
        }
        let slot = THREAD_SLOT.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
                s.set(v);
            }
            v
        });
        slot % self.inner.shards.len()
    }

    /// The calling thread's current snapshot — a coherent immutable
    /// `(pipeline, model, version)` triple, obtained without locking.
    pub fn snapshot(&self) -> Arc<ServingSnapshot> {
        self.inner.shards[self.shard_index()].cell.load()
    }

    /// Answers one prediction query against the current snapshot, without
    /// taking any lock. Returns `None` (and counts a rejection) when the
    /// record is malformed or filtered out by a pipeline cleaning stage.
    pub fn predict(&self, record: &Record) -> Option<Prediction> {
        let shard = &self.inner.shards[self.shard_index()];
        let snap = shard.cell.load();
        self.inner.attempts.fetch_add(1, Ordering::Relaxed);
        let enabled = self.inner.metrics.is_enabled();
        let started = if enabled {
            self.inner.clock.now_secs()
        } else {
            0.0
        };
        match score_raw(&snap, record) {
            Some(value) => {
                shard.served.fetch_add(1, Ordering::Relaxed);
                if enabled {
                    let elapsed = self.inner.clock.now_secs() - started;
                    self.inner.obs.served.inc();
                    self.inner.obs.route_served.inc();
                    self.inner.obs.latency.observe(elapsed);
                    self.inner.obs.route_latency.observe(elapsed);
                }
                Some(Prediction {
                    value,
                    version: snap.version,
                })
            }
            None => {
                shard.rejected.fetch_add(1, Ordering::Relaxed);
                self.inner.obs.rejected.inc();
                self.inner.obs.route_rejected.inc();
                None
            }
        }
    }

    /// Scores a slice of records in one pass against one coherent snapshot,
    /// through the engine's indexed map (the work-stealing pool when the
    /// server was built with a threaded engine). Outcome per record is
    /// exactly what [`ModelServer::predict`] would return under the same
    /// snapshot.
    pub fn predict_batch(&self, records: &[Record]) -> Vec<Option<Prediction>> {
        let shard_idx = self.shard_index();
        let snap = self.inner.shards[shard_idx].cell.load();
        match self.score_batch(&snap, records) {
            Some(values) => {
                let shard = &self.inner.shards[shard_idx];
                values
                    .into_iter()
                    .map(|v| self.account_scored(shard, &snap, v, None))
                    .collect()
            }
            None => {
                self.inner
                    .batch_failed
                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                self.inner.obs.batch_failures.add(records.len() as u64);
                vec![None; records.len()]
            }
        }
    }

    /// Engine pass over `records` with one shared snapshot. `None` = the
    /// map failed fatally (an injected worker panic past the restart
    /// budget); recoverable panics are absorbed by the engine and produce
    /// results identical to the fault-free pass.
    fn score_batch(&self, snap: &ServingSnapshot, records: &[Record]) -> Option<Vec<Option<f64>>> {
        self.inner
            .attempts
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        self.inner
            .engine
            .try_map_indexed_with_hook(
                records.len(),
                |i| score_raw(snap, &records[i]),
                &*self.inner.hook,
                &self.inner.metrics,
            )
            .ok()
    }

    /// Books one scored outcome into the serve/reject counters (queue
    /// latency observed when `enqueued_secs` is known) and shapes it into a
    /// `Prediction`.
    fn account_scored(
        &self,
        shard: &Shard,
        snap: &ServingSnapshot,
        value: Option<f64>,
        enqueued_secs: Option<f64>,
    ) -> Option<Prediction> {
        match value {
            Some(value) => {
                shard.served.fetch_add(1, Ordering::Relaxed);
                if self.inner.metrics.is_enabled() {
                    self.inner.obs.served.inc();
                    self.inner.obs.route_served.inc();
                    if let Some(at) = enqueued_secs {
                        let elapsed = self.inner.clock.now_secs() - at;
                        self.inner.obs.latency.observe(elapsed);
                        self.inner.obs.route_latency.observe(elapsed);
                    }
                }
                Some(Prediction {
                    value,
                    version: snap.version,
                })
            }
            None => {
                shard.rejected.fetch_add(1, Ordering::Relaxed);
                self.inner.obs.rejected.inc();
                self.inner.obs.route_rejected.inc();
                None
            }
        }
    }

    /// Enqueues one query into the calling thread's shard queue for
    /// micro-batched scoring. Flushes inline when the shard reaches
    /// `max_batch`; otherwise the query waits for a deadline flush
    /// ([`ModelServer::flush_due`], [`ModelServer::flush_all`], or a
    /// [`FlusherHandle`]). The returned [`Ticket`] resolves to exactly what
    /// `predict` would have returned under the flush-time snapshot.
    ///
    /// # Errors
    /// [`QueueOverflow`] when the shard's bounded queue is at capacity; the
    /// query is counted in `serving.queue_overflow` and never scored.
    pub fn enqueue(&self, record: Record) -> Result<Ticket, QueueOverflow> {
        let shard_idx = self.shard_index();
        let shard = &self.inner.shards[shard_idx];
        let ticket = Ticket::new();
        let now = self.inner.clock.now_secs();
        let ready = {
            let mut q = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.inner.batch.capacity {
                drop(q);
                self.inner.overflowed.fetch_add(1, Ordering::Relaxed);
                self.inner.obs.overflow.inc();
                return Err(QueueOverflow);
            }
            q.push_back(PendingQuery {
                record,
                ticket: ticket.clone(),
                enqueued_secs: now,
            });
            self.inner.obs.queue_depth.set(q.len() as f64);
            if q.len() >= self.inner.batch.max_batch {
                Some(drain_batch(&mut q, self.inner.batch.max_batch))
            } else {
                None
            }
        };
        if let Some(batch) = ready {
            self.flush_batch(shard_idx, batch);
        }
        Ok(ticket)
    }

    /// Queries currently queued across all shards.
    pub fn pending(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.queue.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Flushes every shard whose oldest pending query has waited at least
    /// `max_delay_secs`; returns the number of queries flushed. A due shard
    /// drains completely (in `max_batch`-sized scoring passes): once the
    /// deadline forces a flush, draining the backlog is cheaper than
    /// re-arming it.
    pub fn flush_due(&self) -> usize {
        let now = self.inner.clock.now_secs();
        let deadline = self.inner.batch.max_delay_secs;
        (0..self.inner.shards.len())
            .map(|i| self.flush_shard(i, Some(now - deadline)))
            .sum()
    }

    /// Flushes every pending query regardless of deadlines; returns the
    /// number flushed.
    pub fn flush_all(&self) -> usize {
        (0..self.inner.shards.len())
            .map(|i| self.flush_shard(i, None))
            .sum()
    }

    /// Drains and scores shard `idx`. With `due_before = Some(t)`, only
    /// fires when the oldest entry was enqueued at or before `t`.
    fn flush_shard(&self, idx: usize, due_before: Option<f64>) -> usize {
        let shard = &self.inner.shards[idx];
        let mut flushed = 0;
        loop {
            let batch = {
                let mut q = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
                let due = match (q.front(), due_before) {
                    (None, _) => false,
                    (Some(_), None) => true,
                    (Some(front), Some(t)) => front.enqueued_secs <= t,
                };
                if !due {
                    self.inner.obs.queue_depth.set(q.len() as f64);
                    break;
                }
                drain_batch(&mut q, self.inner.batch.max_batch)
            };
            flushed += batch.len();
            self.flush_batch(idx, batch);
        }
        flushed
    }

    /// Scores one drained batch against a single snapshot and fulfils its
    /// tickets.
    fn flush_batch(&self, shard_idx: usize, batch: Vec<PendingQuery>) {
        if batch.is_empty() {
            return;
        }
        let shard = &self.inner.shards[shard_idx];
        let snap = shard.cell.load();
        let records: Vec<&Record> = batch.iter().map(|p| &p.record).collect();
        self.inner
            .attempts
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        let scored = self
            .inner
            .engine
            .try_map_indexed_with_hook(
                records.len(),
                |i| score_raw(&snap, records[i]),
                &*self.inner.hook,
                &self.inner.metrics,
            )
            .ok();
        match scored {
            Some(values) => {
                self.inner.obs.batch_size.observe(batch.len() as f64);
                for (pending, value) in batch.iter().zip(values) {
                    let outcome =
                        self.account_scored(shard, &snap, value, Some(pending.enqueued_secs));
                    pending.ticket.fulfil(outcome);
                }
            }
            None => {
                self.inner
                    .batch_failed
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                self.inner.obs.batch_failures.add(batch.len() as u64);
                for pending in &batch {
                    pending.ticket.fulfil(None);
                }
            }
        }
    }

    /// Spawns a background deadline-flush thread polling
    /// [`ModelServer::flush_due`]; stops (and drains the queues) when the
    /// returned handle drops.
    pub fn start_flusher(&self) -> FlusherHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let server = self.clone();
        let flag = Arc::clone(&stop);
        let tick = (self.inner.batch.max_delay_secs / 2.0).max(0.0002);
        let join = std::thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                server.flush_due();
                std::thread::sleep(std::time::Duration::from_secs_f64(tick));
            }
            server.flush_all();
        });
        FlusherHandle {
            stop,
            join: Some(join),
        }
    }

    /// Atomically publishes an updated `(pipeline, model)` pair (e.g. after
    /// a proactive-training instance) to every shard and returns the new
    /// version number. Readers are never blocked: each shard's snapshot
    /// cell rotates to its next epoch slot. A reader thread observes
    /// versions monotonically (it is sticky to one shard, and each shard's
    /// cell moves only forward).
    pub fn publish(&self, pipeline: Pipeline, mut model: LinearModel) -> u64 {
        model.grow_to(pipeline.dim());
        let guard = self
            .inner
            .publish_mu
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let version = self.inner.version.load(Ordering::Relaxed) + 1;
        let snap = Arc::new(ServingSnapshot {
            pipeline,
            model,
            version,
        });
        for shard in &self.inner.shards {
            shard.cell.store(Arc::clone(&snap));
        }
        self.inner.version.store(version, Ordering::SeqCst);
        self.inner
            .last_publish_secs
            .store(self.inner.clock.now_secs().to_bits(), Ordering::Relaxed);
        drop(guard);
        self.inner.obs.publishes.inc();
        self.inner.obs.version.set(version as f64);
        version
    }

    /// Latest published version.
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::SeqCst)
    }

    /// Seconds since the last publish (0 right after deploy/publish).
    pub fn staleness_secs(&self) -> f64 {
        let last = f64::from_bits(self.inner.last_publish_secs.load(Ordering::Relaxed));
        (self.inner.clock.now_secs() - last).max(0.0)
    }

    /// Queries answered so far (sum over shards).
    pub fn queries_served(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.served.load(Ordering::Relaxed))
            .sum()
    }

    /// Malformed/filtered queries rejected so far (sum over shards).
    pub fn queries_rejected(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.rejected.load(Ordering::Relaxed))
            .sum()
    }

    /// Queries handed to scoring (served + rejected + lost to fatal batch
    /// failures) — the accounting invariant's left-hand side.
    pub fn attempts(&self) -> u64 {
        self.inner.attempts.load(Ordering::Relaxed)
    }

    /// Queries turned away by a full micro-batch queue (never scored).
    pub fn queue_overflows(&self) -> u64 {
        self.inner.overflowed.load(Ordering::Relaxed)
    }

    /// Queries lost to a fatal batch-scoring failure (injected worker
    /// panics past the restart budget).
    pub fn batch_failures(&self) -> u64 {
        self.inner.batch_failed.load(Ordering::Relaxed)
    }
}

/// Guard for the background deadline-flush thread of one server; dropping
/// it stops the thread and drains any still-queued queries.
#[derive(Debug)]
pub struct FlusherHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Drop for FlusherHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn drain_batch(q: &mut VecDeque<PendingQuery>, max: usize) -> Vec<PendingQuery> {
    let take = q.len().min(max.max(1));
    q.drain(..take).collect()
}

/// Shared configuration for every route a [`ServingRouter`] registers.
#[derive(Clone)]
pub struct RouterConfig {
    /// Metrics handle shared by all routes (per-route series are
    /// name-scoped).
    pub metrics: Metrics,
    /// Clock for latency/deadline/staleness measurement.
    pub clock: Arc<dyn Clock>,
    /// Fault hook consulted by batch-scoring maps.
    pub hook: Arc<dyn FaultHook>,
    /// SLA rules evaluated by [`ServingRouter::check_slas`].
    pub sla: AlertMonitor,
    /// Shards per route.
    pub shards: usize,
    /// Micro-batching knobs per route.
    pub batch: BatchConfig,
}

impl fmt::Debug for RouterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouterConfig")
            .field("shards", &self.shards)
            .field("batch", &self.batch)
            .field("sla_rules", &self.sla.rules().len())
            .finish()
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            metrics: Metrics::disabled(),
            clock: Arc::new(WallClock::new()),
            hook: Arc::new(NoFaults),
            sla: AlertMonitor::serving_defaults(0.050, 60.0),
            shards: 4,
            batch: BatchConfig::default(),
        }
    }
}

struct RouterInner {
    engine: ExecutionEngine,
    config: RouterConfig,
    routes: Mutex<BTreeMap<String, ModelServer>>,
}

/// Multiplexes many concurrent deployments over one scoring pool: each
/// registered route is a [`ModelServer`] sharing the router's engine,
/// metrics registry, clock, and fault hook, with per-route latency
/// histograms (`serving.<route>.latency_secs`), queue-depth gauges
/// (`serving.<route>.queue_depth`), and the aggregate `serving.*` series
/// feeding the SLA rules of [`AlertMonitor::serving_defaults`].
#[derive(Clone)]
pub struct ServingRouter {
    inner: Arc<RouterInner>,
}

impl fmt::Debug for ServingRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServingRouter")
            .field("engine", &self.inner.engine.name())
            .field("routes", &self.route_names())
            .finish()
    }
}

impl ServingRouter {
    /// A router scoring on `engine` with default [`RouterConfig`].
    pub fn new(engine: ExecutionEngine) -> Self {
        Self::with_config(engine, RouterConfig::default())
    }

    /// A router scoring on `engine` with explicit shared configuration.
    pub fn with_config(engine: ExecutionEngine, config: RouterConfig) -> Self {
        Self {
            inner: Arc::new(RouterInner {
                engine,
                config,
                routes: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Deploys `(pipeline, model)` under `name` and returns the route's
    /// server handle (replacing — and returning a fresh server for — an
    /// existing route of the same name).
    pub fn register(&self, name: &str, pipeline: Pipeline, model: LinearModel) -> ModelServer {
        let cfg = &self.inner.config;
        let server = ModelServer::builder(pipeline, model)
            .route(name)
            .shards(cfg.shards)
            .engine(self.inner.engine)
            .fault_hook(Arc::clone(&cfg.hook))
            .metrics(cfg.metrics.clone())
            .clock(Arc::clone(&cfg.clock))
            .batching(cfg.batch)
            .build();
        self.inner
            .routes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_owned(), server.clone());
        server
    }

    /// The server handle for `name`, if registered.
    pub fn route(&self, name: &str) -> Option<ModelServer> {
        self.inner
            .routes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Registered route names, sorted.
    pub fn route_names(&self) -> Vec<String> {
        self.inner
            .routes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    fn servers(&self) -> Vec<ModelServer> {
        self.inner
            .routes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }

    /// Total queries served across every route (== the sum of per-route
    /// counters, == the aggregate `serving.served` counter).
    pub fn total_served(&self) -> u64 {
        self.servers().iter().map(ModelServer::queries_served).sum()
    }

    /// Total queries rejected across every route.
    pub fn total_rejected(&self) -> u64 {
        self.servers()
            .iter()
            .map(ModelServer::queries_rejected)
            .sum()
    }

    /// Deadline-flushes every route; returns queries flushed.
    pub fn flush_due(&self) -> usize {
        self.servers().iter().map(ModelServer::flush_due).sum()
    }

    /// Flushes every pending query on every route.
    pub fn flush_all(&self) -> usize {
        self.servers().iter().map(ModelServer::flush_all).sum()
    }

    /// Evaluates the SLA rules over the shared metrics registry. Exports
    /// `serving.staleness_secs` (the most stale route's seconds since
    /// publish) first so the `serving.stale_version` rule has its signal,
    /// then appends each fired alert as an `alert.fired` event.
    pub fn check_slas(&self) -> Vec<Alert> {
        let cfg = &self.inner.config;
        let stalest = self
            .servers()
            .iter()
            .map(|s| s.staleness_secs())
            .fold(0.0f64, f64::max);
        cfg.metrics.gauge("serving.staleness_secs").set(stalest);
        let fired = cfg
            .sla
            .evaluate(&cfg.metrics.snapshot(), cfg.clock.now_secs());
        for alert in &fired {
            cfg.metrics.event("alert.fired", alert.message());
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_ml::LossKind;
    use cdp_obs::VirtualClock;
    use cdp_pipeline::encode::DenseEncoder;
    use cdp_pipeline::parser::SchemaParser;
    use cdp_pipeline::scale::StandardScaler;
    use cdp_pipeline::PipelineBuilder;
    use cdp_storage::{RawChunk, Schema, Timestamp, Value};

    fn pipeline() -> Pipeline {
        let schema = Schema::new(["y", "x"]);
        let built = PipelineBuilder::new(SchemaParser::new(schema, "y", &["x"], None))
            .add(StandardScaler::new())
            .encoder(DenseEncoder::new(1));
        match built {
            Ok(p) => p,
            Err(e) => panic!("components are incremental: {e}"),
        }
    }

    fn warmed_pipeline() -> Pipeline {
        let mut p = pipeline();
        let records = (0..8)
            .map(|i| Record::new(vec![Value::Num(i as f64), Value::Num(i as f64)]))
            .collect();
        p.fit_transform_chunk(&RawChunk::new(Timestamp(0), records));
        p
    }

    fn record(x: f64) -> Record {
        Record::new(vec![Value::Num(0.0), Value::Num(x)])
    }

    #[test]
    fn serves_predictions_and_counts() {
        let model = LinearModel::zeros(2, LossKind::Squared);
        let server = ModelServer::new(warmed_pipeline(), model);
        let p = server.predict(&record(1.0)).expect("valid query");
        assert_eq!(p.version, 1);
        assert_eq!(server.queries_served(), 1);

        // Malformed query counts as rejected — and the accounting invariant
        // holds exactly: every attempt lands in exactly one bucket.
        assert!(server
            .predict(&Record::new(vec![Value::Text("bad".into())]))
            .is_none());
        assert_eq!(server.queries_rejected(), 1);
        assert_eq!(
            server.attempts(),
            server.queries_served() + server.queries_rejected() + server.batch_failures()
        );
    }

    #[test]
    fn publish_bumps_version_and_changes_predictions() {
        let server = ModelServer::new(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared));
        let before = server.predict(&record(2.0)).expect("valid");
        assert_eq!(before.value, 0.0);

        let mut trained = LinearModel::zeros(2, LossKind::Squared);
        trained.weights_mut().set(0, 1.0).expect("bias slot");
        let v = server.publish(warmed_pipeline(), trained);
        assert_eq!(v, 2);
        let after = server.predict(&record(2.0)).expect("valid");
        assert_eq!(after.version, 2);
        assert_ne!(after.value, before.value);
    }

    #[test]
    fn concurrent_queries_during_publishes() {
        let server = ModelServer::new(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = server.clone();
                std::thread::spawn(move || {
                    let mut last_version = 0;
                    for i in 0..500 {
                        let p = s.predict(&record(i as f64)).expect("valid query");
                        // Versions move forward, never backward.
                        assert!(p.version >= last_version);
                        last_version = p.version;
                    }
                    last_version
                })
            })
            .collect();
        // Publisher thread: keep deploying new versions while readers run.
        let publisher = {
            let s = server.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    s.publish(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared));
                }
            })
        };
        publisher.join().expect("publisher lives");
        for r in readers {
            let last = r.join().expect("reader lives");
            assert!(last >= 1);
        }
        assert_eq!(server.queries_served(), 4 * 500);
        assert_eq!(server.version(), 51);
    }

    #[test]
    fn snapshot_is_coherent_and_lock_free_reads_see_published_pairs() {
        let server = ModelServer::new(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared));
        let snap = server.snapshot();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.model.dim(), snap.pipeline.dim());

        let mut trained = LinearModel::zeros(2, LossKind::Squared);
        trained.weights_mut().set(0, 3.0).expect("bias slot");
        server.publish(warmed_pipeline(), trained);
        let snap = server.snapshot();
        assert_eq!(snap.version, 2);
        assert_eq!(snap.model.weights().as_slice()[0], 3.0);
    }

    #[test]
    fn batched_scoring_matches_unbatched_bit_for_bit() {
        let mut trained = LinearModel::zeros(2, LossKind::Squared);
        trained.weights_mut().set(0, 0.25).expect("bias slot");
        trained.weights_mut().set(1, -1.5).expect("weight slot");
        let server = ModelServer::builder(warmed_pipeline(), trained)
            .engine(ExecutionEngine::Threaded { workers: 2 })
            .build();
        let records: Vec<Record> = (0..17).map(|i| record(i as f64 * 0.37 - 3.0)).collect();
        let unbatched: Vec<_> = records.iter().map(|r| server.predict(r)).collect();
        let batched = server.predict_batch(&records);
        for (u, b) in unbatched.iter().zip(&batched) {
            match (u, b) {
                (Some(a), Some(c)) => {
                    assert_eq!(a.value.to_bits(), c.value.to_bits());
                    assert_eq!(a.version, c.version);
                }
                (a, c) => assert_eq!(a.is_none(), c.is_none()),
            }
        }
        assert_eq!(server.attempts(), 2 * records.len() as u64);
    }

    #[test]
    fn micro_batch_queue_flushes_on_size_and_deadline() {
        let clock = Arc::new(VirtualClock::new());
        let server =
            ModelServer::builder(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared))
                .shards(1)
                .clock(clock.clone())
                .batching(BatchConfig {
                    max_batch: 3,
                    max_delay_secs: 0.010,
                    capacity: 8,
                })
                .build();

        // Two queries sit below max_batch: still pending.
        let t1 = server.enqueue(record(1.0)).expect("capacity");
        let t2 = server.enqueue(record(2.0)).expect("capacity");
        assert_eq!(server.pending(), 2);
        assert!(t1.try_take().is_none());

        // Deadline not reached yet: flush_due is a no-op.
        assert_eq!(server.flush_due(), 0);
        clock.advance_secs(0.011);
        assert_eq!(server.flush_due(), 2);
        assert!(t1.wait().is_some());
        assert!(t2.wait().is_some());

        // The third enqueue of a full batch flushes inline.
        let t3 = server.enqueue(record(3.0)).expect("capacity");
        let t4 = server.enqueue(record(4.0)).expect("capacity");
        let t5 = server.enqueue(record(5.0)).expect("capacity");
        assert_eq!(server.pending(), 0, "size trigger flushed inline");
        for t in [t3, t4, t5] {
            assert!(t.wait().is_some());
        }
        assert_eq!(server.queries_served(), 5);
    }

    #[test]
    fn bounded_queue_overflows_are_counted_not_scored() {
        let server =
            ModelServer::builder(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared))
                .shards(1)
                .batching(BatchConfig {
                    max_batch: 100,
                    max_delay_secs: 10.0,
                    capacity: 2,
                })
                .build();
        assert!(server.enqueue(record(1.0)).is_ok());
        assert!(server.enqueue(record(2.0)).is_ok());
        assert_eq!(server.enqueue(record(3.0)).err(), Some(QueueOverflow));
        assert_eq!(server.queue_overflows(), 1);
        assert_eq!(server.flush_all(), 2);
        assert_eq!(server.attempts(), 2, "overflowed query was never scored");
    }

    #[test]
    fn serving_metrics_reconcile_with_server_counters() {
        let metrics = Metrics::collecting();
        let server =
            ModelServer::builder(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared))
                .route("url")
                .metrics(metrics.clone())
                .build();
        for i in 0..7 {
            let _ = server.predict(&record(i as f64));
        }
        let _ = server.predict(&Record::new(vec![Value::Text("bad".into())]));
        server.publish(warmed_pipeline(), LinearModel::zeros(2, LossKind::Squared));

        let snap = metrics.snapshot();
        assert_eq!(snap.counter("serving.served"), server.queries_served());
        assert_eq!(snap.counter("serving.rejected"), server.queries_rejected());
        assert_eq!(snap.counter("serving.url.served"), server.queries_served());
        assert_eq!(
            snap.counter("serving.url.rejected"),
            server.queries_rejected()
        );
        assert_eq!(snap.counter("serving.publishes"), 1);
        assert_eq!(snap.gauge("serving.url.version"), 2.0);
        let lat = snap.histogram("serving.latency_secs").expect("latencies");
        assert_eq!(lat.count, server.queries_served());
    }

    #[test]
    fn router_multiplexes_routes_and_sums_counters() {
        let metrics = Metrics::collecting();
        let router = ServingRouter::with_config(
            ExecutionEngine::Sequential,
            RouterConfig {
                metrics: metrics.clone(),
                ..RouterConfig::default()
            },
        );
        let a = router.register(
            "a",
            warmed_pipeline(),
            LinearModel::zeros(2, LossKind::Squared),
        );
        let b = router.register(
            "b",
            warmed_pipeline(),
            LinearModel::zeros(2, LossKind::Squared),
        );
        for i in 0..5 {
            let _ = a.predict(&record(i as f64));
        }
        for i in 0..3 {
            let _ = b.predict(&record(i as f64));
        }
        assert_eq!(router.route_names(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(router.total_served(), 8);
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counter("serving.served"),
            snap.counter("serving.a.served") + snap.counter("serving.b.served")
        );
        assert!(router.route("a").is_some());
        assert!(router.route("missing").is_none());
    }

    #[test]
    fn sla_rules_fire_on_breach_and_stay_quiet_when_healthy() {
        let clock = Arc::new(VirtualClock::new());
        let metrics = Metrics::with_clock(clock.clone());
        let router = ServingRouter::with_config(
            ExecutionEngine::Sequential,
            RouterConfig {
                metrics: metrics.clone(),
                clock: clock.clone(),
                sla: AlertMonitor::serving_defaults(0.050, 60.0),
                ..RouterConfig::default()
            },
        );
        let server = router.register(
            "url",
            warmed_pipeline(),
            LinearModel::zeros(2, LossKind::Squared),
        );
        let _ = server.predict(&record(1.0));
        assert!(
            router.check_slas().is_empty(),
            "healthy route fires nothing"
        );

        // A slow quantile, a full queue, and a stale route each breach.
        metrics.histogram("serving.latency_secs").observe(0.5);
        metrics.counter("serving.queue_overflow").inc();
        clock.advance_secs(120.0);
        let fired = router.check_slas();
        let names: Vec<&str> = fired.iter().map(|a| a.rule.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "serving.p99_breach",
                "serving.queue_overflow",
                "serving.stale_version"
            ]
        );
    }

    #[test]
    fn fingerprint_separates_weight_vectors() {
        let a = weights_fingerprint(&[1.0, 2.0]);
        let b = weights_fingerprint(&[1.0, 2.0 + 1e-12]);
        let c = weights_fingerprint(&[1.0, 2.0, 0.0]);
        assert_eq!(a, weights_fingerprint(&[1.0, 2.0]));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(weights_fingerprint(&[]), weights_fingerprint(&[0.0]));
    }
}
