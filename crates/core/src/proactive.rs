//! The proactive trainer (paper §3.3, §4.4): one mini-batch SGD iteration
//! over a sample of the historical data.

use cdp_engine::EngineError;
use cdp_eval::CostLedger;

use crate::data_manager::SampledChunk;
use crate::pipeline_manager::{PipelineManager, ProactiveSource};

/// Outcome of one proactive-training instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProactiveOutcome {
    /// Sampled chunks that were materialized (used directly).
    pub materialized_chunks: usize,
    /// Sampled chunks served from the disk spill tier.
    pub spilled_chunks: usize,
    /// Sampled chunks that had to be re-materialized through the pipeline.
    pub rematerialized_chunks: usize,
    /// Training examples in the mini-batch.
    pub points: usize,
    /// Mean pre-update loss of the batch (`None` for an empty sample).
    pub batch_loss: Option<f64>,
    /// Accounted seconds this instance cost (the scheduler's `T`).
    pub accounted_secs: f64,
}

/// Executes proactive-training instances against a [`PipelineManager`].
///
/// Each instance is exactly one iteration of mini-batch SGD (Algorithm 1):
/// because an iteration depends only on the current model and optimizer
/// state — both owned by the pipeline manager's trainer — instances may run
/// at arbitrary times between online updates without breaking convergence
/// (conditional independence, §3.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProactiveTrainer {
    /// When `false`, simulate a platform *without* online statistics
    /// computation: every sampled chunk pays a statistics-recomputation
    /// scan and a raw-data disk read (the NoOptimization baseline of
    /// Experiment 3).
    pub online_stats: bool,
}

impl ProactiveTrainer {
    /// A trainer with both paper optimizations enabled.
    pub fn new() -> Self {
        Self { online_stats: true }
    }

    /// A trainer simulating the NoOptimization baseline.
    pub fn without_online_stats() -> Self {
        Self {
            online_stats: false,
        }
    }

    /// Runs one proactive-training instance over `sampled` chunks.
    ///
    /// # Panics
    /// Panics when re-materialization fails beyond recovery; use
    /// [`ProactiveTrainer::try_execute`] for a typed error.
    pub fn execute(
        &self,
        pm: &mut PipelineManager,
        sampled: Vec<SampledChunk>,
        ledger: &mut CostLedger,
    ) -> ProactiveOutcome {
        match self.try_execute(pm, sampled, ledger) {
            Ok(outcome) => outcome,
            Err(e) => panic!("proactive training failed: {e}"),
        }
    }

    /// Runs one proactive-training instance, surfacing unrecoverable engine
    /// faults during batched re-materialization as typed errors.
    ///
    /// # Errors
    /// [`EngineError::WorkerPanic`] when a worker dies beyond the restart
    /// budget during re-materialization.
    pub fn try_execute(
        &self,
        pm: &mut PipelineManager,
        sampled: Vec<SampledChunk>,
        ledger: &mut CostLedger,
    ) -> Result<ProactiveOutcome, EngineError> {
        let before = ledger.total();
        let mut materialized = 0usize;
        let mut spilled = 0usize;
        let mut rematerialized = 0usize;
        // One fused-step source per sampled chunk, in sample order: cached
        // chunks contribute their stored features directly; evicted ones
        // carry the raw data and are transformed on the fly inside the fused
        // transform+gradient pass — no intermediate feature chunk and no
        // union batch buffer are ever allocated.
        let mut sources: Vec<ProactiveSource> = Vec::with_capacity(sampled.len());

        for chunk in sampled {
            match chunk {
                SampledChunk::Materialized(fc) if self.online_stats => {
                    // Stage 4 fast path: fetch from the in-memory cache.
                    ledger.charge_memory(fc.size_bytes() as u64);
                    materialized += 1;
                    sources.push(ProactiveSource::Ready(fc));
                }
                SampledChunk::Materialized(fc) => {
                    // NoOptimization ignores the cache entirely: read raw
                    // data from disk, rescan for statistics, re-transform.
                    // The stored features are still correct, so reuse their
                    // values after charging the recomputation cost.
                    ledger.charge_disk(fc.size_bytes() as u64);
                    ledger.charge_transforms(fc.len() as u64 * 2);
                    ledger.charge_encode(fc.len() as u64);
                    ledger.charge_parse(fc.len() as u64);
                    ledger.charge_stat_updates(fc.len() as u64 * 2);
                    rematerialized += 1;
                    sources.push(ProactiveSource::Ready(fc));
                }
                SampledChunk::Spilled(fc) => {
                    // Evicted from memory but recovered from the disk spill
                    // tier: pay the disk read, skip the re-transformation.
                    ledger.charge_disk(fc.size_bytes() as u64);
                    if !self.online_stats {
                        ledger.charge_parse(fc.len() as u64);
                        ledger.charge_stat_updates(fc.len() as u64 * 2);
                    }
                    spilled += 1;
                    sources.push(ProactiveSource::Ready(fc));
                }
                SampledChunk::NeedsRematerialization(raw) => {
                    if !self.online_stats {
                        ledger.charge_disk(raw.size_bytes() as u64);
                        pm.charge_statistics_recomputation(&raw, ledger);
                    }
                    rematerialized += 1;
                    sources.push(ProactiveSource::Raw(raw));
                }
            }
        }

        // The union of all sampled chunks, in sample order, is the
        // mini-batch (the paper's context.union before the model update);
        // the fused step consumes it source by source while re-materializing
        // evicted chunks on the fly.
        let outcome = pm.try_proactive_step_fused(&sources, ledger)?;

        Ok(ProactiveOutcome {
            materialized_chunks: materialized,
            spilled_chunks: spilled,
            rematerialized_chunks: rematerialized,
            points: outcome.points as usize,
            batch_loss: outcome.loss,
            accounted_secs: ledger.total() - before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_eval::{CostModel, ErrorMetric, PrequentialEvaluator};
    use cdp_ml::{LossKind, SgdConfig};
    use cdp_pipeline::encode::DenseEncoder;
    use cdp_pipeline::parser::SchemaParser;
    use cdp_pipeline::scale::StandardScaler;
    use cdp_pipeline::{Pipeline, PipelineBuilder};
    use cdp_storage::{FeatureChunk, RawChunk, Record, Schema, Timestamp, Value};
    use std::sync::Arc;

    fn pipeline() -> Pipeline {
        let schema = Schema::new(["y", "x"]);
        PipelineBuilder::new(SchemaParser::new(schema, "y", &["x"], None))
            .add(StandardScaler::new())
            .encoder(DenseEncoder::new(1))
            .unwrap()
    }

    fn chunk(ts: u64) -> RawChunk {
        RawChunk::new(
            Timestamp(ts),
            (0..4)
                .map(|i| {
                    let x = (ts * 4 + i) as f64;
                    Record::new(vec![Value::Num(2.0 * x + 1.0), Value::Num(x)])
                })
                .collect(),
        )
    }

    fn warmed_manager() -> (PipelineManager, Vec<Arc<FeatureChunk>>, Vec<Arc<RawChunk>>) {
        let mut pm = PipelineManager::new(pipeline(), &SgdConfig::for_loss(LossKind::Squared), 8);
        let mut ev = PrequentialEvaluator::new(ErrorMetric::Rmsle, 0);
        let mut ledger = CostLedger::default();
        let mut fcs = Vec::new();
        let mut raws = Vec::new();
        for t in 0..4 {
            let raw = chunk(t);
            let fc = pm.process_online_chunk(&raw, &mut ev, &mut ledger);
            fcs.push(Arc::new(fc));
            raws.push(Arc::new(raw));
        }
        (pm, fcs, raws)
    }

    #[test]
    fn executes_one_sgd_step_over_union() {
        let (mut pm, fcs, raws) = warmed_manager();
        let steps_before = pm.trainer().steps();
        let mut ledger = CostLedger::new(CostModel::commodity());
        let sampled = vec![
            SampledChunk::Materialized(Arc::clone(&fcs[2])),
            SampledChunk::NeedsRematerialization(Arc::clone(&raws[0])),
        ];
        let outcome = ProactiveTrainer::new().execute(&mut pm, sampled, &mut ledger);
        assert_eq!(pm.trainer().steps(), steps_before + 1);
        assert_eq!(outcome.materialized_chunks, 1);
        assert_eq!(outcome.rematerialized_chunks, 1);
        assert_eq!(outcome.points, 8);
        assert!(outcome.batch_loss.is_some());
        assert!(outcome.accounted_secs > 0.0);
    }

    #[test]
    fn empty_sample_is_a_no_op_step() {
        let (mut pm, _, _) = warmed_manager();
        let steps_before = pm.trainer().steps();
        let mut ledger = CostLedger::default();
        let outcome = ProactiveTrainer::new().execute(&mut pm, vec![], &mut ledger);
        assert_eq!(outcome.points, 0);
        assert_eq!(outcome.batch_loss, None);
        assert_eq!(pm.trainer().steps(), steps_before);
    }

    #[test]
    fn materialized_chunks_are_cheaper_than_rematerialization() {
        let (mut pm, fcs, raws) = warmed_manager();
        let trainer = ProactiveTrainer::new();

        let mut cheap = CostLedger::default();
        trainer.execute(
            &mut pm,
            vec![SampledChunk::Materialized(Arc::clone(&fcs[1]))],
            &mut cheap,
        );
        let mut costly = CostLedger::default();
        trainer.execute(
            &mut pm,
            vec![SampledChunk::NeedsRematerialization(Arc::clone(&raws[1]))],
            &mut costly,
        );
        assert!(
            cheap.total() < costly.total(),
            "materialized {} vs rematerialized {}",
            cheap.total(),
            costly.total()
        );
    }

    #[test]
    fn no_optimization_pays_more_even_when_materialized() {
        let (mut pm, fcs, _) = warmed_manager();
        let mut with_opt = CostLedger::default();
        ProactiveTrainer::new().execute(
            &mut pm,
            vec![SampledChunk::Materialized(Arc::clone(&fcs[3]))],
            &mut with_opt,
        );
        let mut without = CostLedger::default();
        ProactiveTrainer::without_online_stats().execute(
            &mut pm,
            vec![SampledChunk::Materialized(Arc::clone(&fcs[3]))],
            &mut without,
        );
        assert!(without.total() > with_opt.total());
    }
}
