//! # cdpipe — Continuous Deployment of Machine Learning Pipelines
//!
//! A from-scratch Rust reproduction of *Continuous Deployment of Machine
//! Learning Pipelines* (Derakhshan, Rezaei Mahdiraji, Rabl, Markl —
//! EDBT 2019): a platform that keeps a deployed ML pipeline + model fresh
//! with **proactive training** (scheduled mini-batch SGD over samples of the
//! history) instead of periodical full retraining, accelerated by **online
//! statistics computation** and **dynamic materialization** of preprocessed
//! feature chunks.
//!
//! ## Quickstart
//!
//! ```
//! use cdpipe::core::{run_deployment, url_spec, DeploymentConfig, SpecScale};
//! use cdpipe::sampling::SamplingStrategy;
//!
//! // The paper's URL experiment at test scale: a drifting, sparse,
//! // high-dimensional classification stream plus its 5-stage pipeline.
//! let (stream, spec) = url_spec(SpecScale::Tiny);
//!
//! // Deploy continuously: proactive training every 2 chunks, sampling 3
//! // chunks per instance with time-based (recency-weighted) sampling.
//! let config = DeploymentConfig::continuous(2, 3, SamplingStrategy::TimeBased);
//! let result = run_deployment(&stream, &spec, &config);
//!
//! assert!(result.proactive_runs > 0);
//! assert!(result.final_error < 0.5);
//! println!(
//!     "error {:.3}, cost {:.1}s, {} proactive steps",
//!     result.final_error, result.total_secs, result.proactive_runs
//! );
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`linalg`] | `cdp-linalg` | dense/sparse vectors and SGD kernels |
//! | [`storage`] | `cdp-storage` | timestamped chunks, budgeted feature cache, disk tier |
//! | [`pipeline`] | `cdp-pipeline` | `update`/`transform` components, online statistics |
//! | [`ml`] | `cdp-ml` | losses, Adam/RMSProp/AdaDelta, mini-batch SGD |
//! | [`sampling`] | `cdp-sampling` | uniform / window / time-based sampling, μ analysis |
//! | [`engine`] | `cdp-engine` | sequential / threaded chunk-parallel execution |
//! | [`eval`] | `cdp-eval` | prequential error, deployment-cost ledger |
//! | [`datagen`] | `cdp-datagen` | synthetic URL & Taxi streams |
//! | [`obs`] | `cdp-obs` | metrics, spans, event log, injectable clock |
//! | [`core`] | `cdp-core` | the platform: managers, scheduler, deployment drivers |

#![warn(missing_docs)]

pub use cdp_core as core;
pub use cdp_datagen as datagen;
pub use cdp_engine as engine;
pub use cdp_eval as eval;
pub use cdp_faults as faults;
pub use cdp_linalg as linalg;
pub use cdp_ml as ml;
pub use cdp_obs as obs;
pub use cdp_pipeline as pipeline;
pub use cdp_sampling as sampling;
pub use cdp_storage as storage;

/// The most common imports for platform users.
pub mod prelude {
    pub use cdp_core::checkpoint::DeploymentCheckpoint;
    pub use cdp_core::deployment::{
        resume_deployment, run_deployment, try_resume_deployment, try_resume_deployment_observed,
        try_resume_deployment_traced, try_run_deployment, try_run_deployment_observed,
        try_run_deployment_traced, CheckpointConfig, CheckpointStats, DeploymentConfig,
        DeploymentError, DeploymentMode, DeploymentResult, OptimizationConfig, RecorderConfig,
        TelemetryConfig, WalConfig,
    };
    pub use cdp_core::presets::{taxi_spec, url_spec, DeploymentSpec, SpecScale};
    pub use cdp_core::scheduler::Scheduler;
    pub use cdp_core::serving::{
        BatchConfig, ModelServer, Prediction, RouterConfig, ServingRouter, ServingSnapshot,
    };
    pub use cdp_datagen::scenarios::{
        BurstyArrivals, DiurnalArrivals, OutOfOrderArrivals, RecurringDrift, SuddenDrift,
    };
    pub use cdp_datagen::ChunkStream;
    pub use cdp_eval::ErrorMetric;
    pub use cdp_faults::{CrashSite, FaultPlan, FaultStats};
    pub use cdp_ml::{LossKind, OptimizerKind, Regularizer, SgdConfig};
    pub use cdp_obs::{
        load_segments, Alert, AlertMonitor, BurnRule, FlightRecorder, LineageEventKind, Metrics,
        MetricsSnapshot, SloMonitor, TelemetrySegment, TelemetryStore, TraceSnapshot, Tracer,
        VirtualClock, WallClock,
    };
    pub use cdp_sampling::SamplingStrategy;
    pub use cdp_storage::{StorageBudget, WalStats};
}
