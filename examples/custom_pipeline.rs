//! Deploying a *user-defined* pipeline on the platform.
//!
//! The paper's platform is generic: any pipeline whose components implement
//! `update` / `transform` with incrementally-computable statistics can be
//! deployed. This example builds a fraud-scoring pipeline from scratch — a
//! custom parser, a custom log-transform component, the library's scaler and
//! one-hot encoder, and a logistic-regression model — generates its own
//! stream, and runs it through the continuous platform.
//!
//! ```sh
//! cargo run --release --example custom_pipeline
//! ```

use std::sync::Arc;

use cdpipe::core::report::{fmt_f, fmt_secs};
use cdpipe::core::{run_deployment, DeploymentConfig, DeploymentSpec};
use cdpipe::datagen::ChunkStream;
use cdpipe::pipeline::component::RowComponent;
use cdpipe::pipeline::encode::OneHotEncoder;
use cdpipe::pipeline::parser::SchemaParser;
use cdpipe::pipeline::scale::StandardScaler;
use cdpipe::pipeline::{PipelineBuilder, Row};
use cdpipe::prelude::*;
use cdpipe::storage::{RawChunk, Record, Schema, Timestamp, Value};

/// A custom stateless component: log1p on heavy-tailed amount columns.
#[derive(Debug, Clone)]
struct LogAmounts;

impl RowComponent for LogAmounts {
    fn name(&self) -> &str {
        "log-amounts"
    }

    fn transform(&self, mut rows: Vec<Row>) -> Vec<Row> {
        for row in &mut rows {
            for v in &mut row.nums {
                if !v.is_nan() {
                    *v = v.abs().ln_1p().copysign(*v);
                }
            }
        }
        rows
    }

    fn clone_box(&self) -> Box<dyn RowComponent> {
        Box::new(self.clone())
    }
}

/// A synthetic payments stream: amount + hour + merchant category, where
/// fraud concentrates on large night-time transactions in some categories.
#[derive(Debug, Clone)]
struct PaymentsStream {
    schema: Arc<Schema>,
    chunks: usize,
    rows: usize,
}

impl PaymentsStream {
    fn new(chunks: usize, rows: usize) -> Self {
        Self {
            schema: Schema::new(["label", "amount", "hour", "merchant"]),
            chunks,
            rows,
        }
    }
}

impl ChunkStream for PaymentsStream {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn total_chunks(&self) -> usize {
        self.chunks
    }

    fn initial_chunks(&self) -> usize {
        self.chunks / 5
    }

    fn chunk(&self, index: usize) -> RawChunk {
        // A tiny deterministic generator: hash-based pseudo-randomness.
        let mut state = 0x9E37_79B9u64.wrapping_mul(index as u64 + 1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let records = (0..self.rows)
            .map(|_| {
                let amount = 10.0 + 2000.0 * next() * next();
                let hour = (24.0 * next()).floor();
                let merchant = ((6.0 * next()).floor() as u8).to_string();
                let night = !(6.0..22.0).contains(&hour);
                let risky_merchant = merchant == "0" || merchant == "1";
                let score = 0.8 * f64::from(amount > 900.0)
                    + 0.6 * f64::from(night)
                    + 0.5 * f64::from(risky_merchant)
                    + 0.4 * next();
                let label = if score > 1.2 { 1.0 } else { -1.0 };
                Record::new(vec![
                    Value::Num(label),
                    Value::Num(amount),
                    Value::Num(hour),
                    Value::Text(format!("m{merchant}")),
                ])
            })
            .collect();
        RawChunk::new(Timestamp(index as u64), records)
    }
}

fn main() {
    let stream = PaymentsStream::new(40, 50);
    let schema = stream.schema();

    // Assemble the custom pipeline: parser → log-transform → scaler →
    // one-hot encoder (merchant category; its category table is the
    // incrementally-learned statistic).
    let factory = {
        let schema = Arc::clone(&schema);
        move || {
            let parser = SchemaParser::new(
                Arc::clone(&schema),
                "label",
                &["amount", "hour"],
                Some("merchant"),
            );
            // The factory returns the builder's Result directly: a
            // non-incremental component surfaces as a typed
            // `DeploymentError::Pipeline` instead of a panic.
            PipelineBuilder::new(parser)
                .add(LogAmounts)
                .add(StandardScaler::new())
                .encoder(OneHotEncoder::new(2))
        }
    };

    let sgd = SgdConfig {
        loss: LossKind::Logistic,
        optimizer: OptimizerKind::adam(0.05),
        regularizer: Regularizer::L2(1e-4),
        batch_size: 32,
        ..SgdConfig::for_loss(LossKind::Logistic)
    };

    // Wrap it all into a spec the platform can deploy. The spec type is the
    // same one the built-in URL/Taxi presets use.
    let spec = DeploymentSpec::custom(
        "payments-fraud",
        ErrorMetric::Misclassification,
        sgd,
        32,
        4,
        Arc::new(factory),
    );

    let config = DeploymentConfig::continuous(3, 4, SamplingStrategy::TimeBased);
    let result = run_deployment(&stream, &spec, &config);

    println!("custom pipeline deployed continuously:");
    println!("  fraud-detection error: {}", fmt_f(result.final_error, 4));
    println!("  deployment cost:       {}", fmt_secs(result.total_secs));
    println!("  proactive trainings:   {}", result.proactive_runs);
    println!("  queries answered:      {}", result.queries_answered);
    assert!(
        result.final_error < 0.5,
        "the model must beat coin-flipping"
    );
}
