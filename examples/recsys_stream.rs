//! A streaming recommender kept fresh with proactive-style updates.
//!
//! The paper argues its proactive-training idea applies to any SGD-trained
//! model (§3.3 cites matrix factorization and clustering as SGD
//! applications). This example streams user–item ratings whose preferences
//! drift, and keeps a latent-factor model fresh by interleaving online
//! steps on arriving ratings with "proactive" steps over samples of the
//! rating history — the same test-then-train / replay pattern the platform
//! applies to linear models. A k-means model segments users on the side.
//!
//! ```sh
//! cargo run --release --example recsys_stream
//! ```

use cdpipe::linalg::{DenseVector, Vector};
use cdpipe::ml::{MatrixFactorization, MfConfig, MiniBatchKMeans, Rating};

const USERS: usize = 60;
const ITEMS: usize = 80;

/// Deterministic pseudo-random stream of drifting ratings: user tastes
/// rotate slowly, like the URL dataset's token associations.
fn rating_chunk(chunk: usize, rows: usize) -> Vec<Rating> {
    let mut state = 0xC0FFEE ^ (chunk as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let drift = chunk as f64 * 0.01;
    (0..rows)
        .map(|_| {
            let user = (next() * USERS as f64) as usize % USERS;
            let item = (next() * ITEMS as f64) as usize % ITEMS;
            // Rank-2 taste structure with rotating phase.
            let ua = ((user as f64 * 0.7) + drift).sin();
            let ub = ((user as f64 * 1.3) - drift).cos();
            let ia = (item as f64 * 0.5).sin();
            let ib = (item as f64 * 0.9).cos();
            let value = 3.0 + ua * ia + ub * ib + 0.1 * (next() - 0.5);
            Rating { user, item, value }
        })
        .collect()
}

fn main() {
    let mut model = MatrixFactorization::new(USERS, ITEMS, MfConfig::default());
    let mut history: Vec<Rating> = Vec::new();
    let mut cumulative_sq = 0.0;
    let mut seen = 0u64;

    for chunk_idx in 0..200 {
        let chunk = rating_chunk(chunk_idx, 64);
        // Test-then-train (prequential): predict before updating.
        for r in &chunk {
            let err = r.value - model.predict(r.user, r.item);
            cumulative_sq += err * err;
            seen += 1;
        }
        // Online step on the arriving ratings.
        model.step(&chunk);
        history.extend_from_slice(&chunk);

        // Proactive step: every 5 chunks, replay a recency-weighted sample
        // of the history (newest half, which linear-rank weighting favours).
        if chunk_idx % 5 == 4 {
            let start = history.len() / 2;
            let sample: Vec<Rating> = history[start..].iter().step_by(7).copied().collect();
            model.step(&sample);
        }
    }
    let rmse = (cumulative_sq / seen as f64).sqrt();
    println!("prequential rating RMSE over the drifting stream: {rmse:.3}");
    assert!(
        rmse < 1.0,
        "the factorization must track the drifting tastes"
    );

    // Side task: segment users by their learned taste using SGD k-means.
    let user_vectors: Vec<Vector> = (0..USERS)
        .map(|u| {
            Vector::Dense(DenseVector::new(
                (0..8).map(|i| model.predict(u, i * 9)).collect(),
            ))
        })
        .collect();
    let seeds: Vec<DenseVector> = user_vectors.iter().take(4).map(Vector::to_dense).collect();
    let mut km = MiniBatchKMeans::from_seeds(seeds);
    for _ in 0..10 {
        for batch in user_vectors.chunks(16) {
            km.step(batch.iter());
        }
    }
    let mut sizes = vec![0usize; km.k()];
    for v in &user_vectors {
        sizes[km.assign(v)] += 1;
    }
    println!("user segments by predicted taste: {sizes:?}");
    println!(
        "segmentation inertia: {:.3}",
        km.inertia(user_vectors.iter())
    );
}
