//! The Taxi pipeline end to end, at the component level.
//!
//! Walks one chunk of synthetic NYC trip records through every pipeline
//! stage (parse → extract → anomaly-filter → select → scale → encode),
//! printing what each stage does, then deploys the pipeline continuously
//! with a bounded materialization budget and reports μ and cost.
//!
//! ```sh
//! cargo run --release --example taxi_pipeline
//! ```

use cdpipe::core::report::{fmt_f, fmt_secs, Table};
use cdpipe::prelude::*;
use cdpipe::sampling::{mu_time_based, mu_uniform};

fn main() {
    let (stream, spec) = taxi_spec(SpecScale::Tiny);

    // ---- Stage-by-stage walk of one chunk ----
    let mut pipeline = spec.build_pipeline();
    println!("pipeline stages: {:?}", pipeline.stage_names());
    let chunk = stream.chunk(0);
    println!("raw chunk: {} trip records", chunk.len());
    let fc = pipeline.fit_transform_chunk(&chunk);
    println!(
        "after pipeline: {} examples ({} anomalous trips filtered), {} features each",
        fc.len(),
        chunk.len() - fc.len(),
        fc.rows().next().map_or(0, |r| r.dim()),
    );
    if let Some(r) = fc.rows().next() {
        println!(
            "first example: label (log1p duration) = {:.3} → ≈ {:.0} s trip",
            r.label(),
            r.label().exp() - 1.0
        );
    }

    // ---- Deployment with a bounded feature cache ----
    println!("\n== continuous deployment under a storage budget ==");
    let total = stream.total_chunks();
    let mut table = Table::new([
        "budget (chunks)",
        "μ measured",
        "μ theory (time-based)",
        "cost",
    ]);
    for rate in [0.2f64, 0.6, 1.0] {
        let m = ((total as f64) * rate) as usize;
        let mut config = DeploymentConfig::continuous(
            spec.proactive_every,
            spec.sample_chunks,
            SamplingStrategy::TimeBased,
        );
        config.optimization.budget = StorageBudget::MaxChunks(m);
        let result = run_deployment(&stream, &spec, &config);
        let theory = if rate >= 1.0 {
            1.0
        } else {
            mu_time_based(m, total)
        };
        table.row([
            format!("{m} ({rate:.0}% of {total})", rate = rate * 100.0),
            fmt_f(result.empirical_mu, 3),
            fmt_f(theory, 3),
            fmt_secs(result.total_secs),
        ]);
    }
    println!("{}", table.render());
    println!(
        "uniform-sampling theory at 20%: μ = {:.3} (time-based beats it by construction)",
        mu_uniform(total / 5, total)
    );
}
