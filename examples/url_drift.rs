//! Concept drift on the URL stream: why time-based sampling wins.
//!
//! The synthetic URL stream gradually rotates which tokens indicate a
//! malicious URL (like the real dataset, whose feature set changes over
//! 121 days). This example deploys the same continuous configuration with
//! the three sampling strategies and shows the drift-tracking gap, plus a
//! drift detector watching the online error stream.
//!
//! ```sh
//! cargo run --release --example url_drift
//! ```

use cdpipe::core::presets::url_spec_from;
use cdpipe::core::report::{fmt_f, sparkline, Table};
use cdpipe::datagen::url::UrlConfig;
use cdpipe::pipeline::drift::{DriftDetector, DriftStatus};
use cdpipe::prelude::*;

fn main() {
    // A fast-drifting URL stream: token/class associations rotate hard so
    // the strategy gap is visible within a small run.
    let config = UrlConfig {
        days: 30,
        chunks_per_day: 4,
        rows_per_chunk: 30,
        base_vocab: 800,
        vocab_growth_per_day: 30,
        tokens_per_row: 10,
        lexical_features: 8,
        drift_per_day: 0.18,
        ..UrlConfig::repo_scale()
    };
    let (stream, spec) = url_spec_from(config, 10, SpecScale::Tiny);

    println!("== sampling strategies under drift ==");
    let strategies = [
        SamplingStrategy::TimeBased,
        SamplingStrategy::WindowBased {
            window: stream.total_chunks() / 2,
        },
        SamplingStrategy::Uniform,
    ];
    let mut table = Table::new(["strategy", "final error", "avg error", "error curve"]);
    for strategy in strategies {
        let config =
            DeploymentConfig::continuous(spec.proactive_every, spec.sample_chunks, strategy);
        let result = run_deployment(&stream, &spec, &config);
        table.row([
            strategy.name().to_owned(),
            fmt_f(result.final_error, 4),
            fmt_f(result.average_error, 4),
            sparkline(&result.error_curve, 24),
        ]);
    }
    println!("{}", table.render());

    println!("== drift detector on the online error stream ==");
    // Feed per-example 0/1 errors of an online-only deployment into the
    // windowed detector; report the first warning/drift positions.
    let mut detector = DriftDetector::new(120, 30, 1.5, 2.5);
    let config = DeploymentConfig::online();
    let result = run_deployment(&stream, &spec, &config);
    // The error curve is cumulative; reconstruct approximate per-chunk
    // error increments to drive the detector.
    let mut prev = (0u64, 0.0f64);
    let mut first_warning = None;
    let mut first_drift = None;
    for &(count, cum_err) in &result.error_curve {
        let errors_so_far = cum_err * count as f64;
        let prev_errors = prev.1 * prev.0 as f64;
        let fresh = (count - prev.0) as f64;
        let chunk_err = ((errors_so_far - prev_errors) / fresh.max(1.0)).clamp(0.0, 1.0);
        prev = (count, cum_err);
        for _ in 0..fresh as usize {
            match detector.observe(chunk_err) {
                DriftStatus::Warning if first_warning.is_none() => {
                    first_warning = Some(count);
                }
                DriftStatus::Drift if first_drift.is_none() => {
                    first_drift = Some(count);
                }
                _ => {}
            }
        }
    }
    match (first_warning, first_drift) {
        (Some(w), Some(d)) => {
            println!("warning at example {w}, drift at example {d}");
        }
        (Some(w), None) => println!("warning at example {w}, no full drift signal"),
        _ => println!("error stream stayed stable under online learning"),
    }
    println!(
        "online-only final error: {} (continuous with time-based sampling tracks drift better)",
        fmt_f(result.final_error, 4)
    );
}
