//! Quickstart: deploy the URL pipeline three ways and compare.
//!
//! Runs the paper's Experiment-1 comparison (Online vs Periodical vs
//! Continuous) on a small slice of the synthetic URL stream and prints
//! quality, cost, and the cost ratio the paper headlines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cdpipe::core::report::{fmt_f, fmt_secs, Table};
use cdpipe::prelude::*;

fn main() {
    // A drifting, sparse, high-dimensional classification stream and the
    // 5-stage pipeline that processes it (parser → imputer → scaler →
    // feature hasher → SVM).
    let (stream, spec) = url_spec(SpecScale::Tiny);
    println!(
        "URL stream: {} chunks total, {} initial; pipeline dim {}",
        stream.total_chunks(),
        stream.initial_chunks(),
        spec.build_pipeline().dim()
    );

    let configs = [
        ("Online", DeploymentConfig::online()),
        (
            "Periodical",
            DeploymentConfig::periodical(spec.retrain_every),
        ),
        (
            "Continuous",
            DeploymentConfig::continuous(
                spec.proactive_every,
                spec.sample_chunks,
                SamplingStrategy::TimeBased,
            ),
        ),
    ];

    let mut table = Table::new(["approach", "error", "cost", "proactive", "retrains"]);
    let mut results = Vec::new();
    for (name, config) in configs {
        let result = run_deployment(&stream, &spec, &config);
        table.row([
            name.to_owned(),
            fmt_f(result.final_error, 4),
            fmt_secs(result.total_secs),
            result.proactive_runs.to_string(),
            result.retrain_runs.to_string(),
        ]);
        results.push(result);
    }
    println!("\n{}", table.render());

    let ratio = results[1].cost_ratio_to(&results[2]);
    println!("periodical / continuous cost ratio: {ratio:.1}x");
    println!(
        "continuous avg proactive-training time: {}",
        fmt_secs(results[2].avg_proactive_secs)
    );
}
