//! Live serving while training: the wall-clock version of the platform.
//!
//! A training thread runs the continuous-deployment loop (online updates +
//! proactive training) and publishes every refreshed model to a
//! [`cdpipe::core::ModelServer`]; query threads keep firing prediction
//! queries against the server the whole time. Model versions advance
//! mid-flight without ever blocking a query — the operational form of the
//! paper's "the platform always performs the online model update and
//! answers the prediction queries using an up-to-date model" (§5.5).
//!
//! ```sh
//! cargo run --release --example live_serving
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cdpipe::core::{DataManager, ModelServer, PipelineManager, ProactiveTrainer};
use cdpipe::datagen::ChunkStream;
use cdpipe::eval::{CostLedger, PrequentialEvaluator};
use cdpipe::prelude::*;

fn main() {
    let (stream, spec) = url_spec(SpecScale::Tiny);

    // Initial training, then deploy to the server.
    let mut pm = PipelineManager::new(spec.build_pipeline(), &spec.sgd, spec.online_batch);
    let mut dm = DataManager::new(StorageBudget::Unbounded, SamplingStrategy::TimeBased, 11);
    let mut ledger = CostLedger::default();
    let initial = stream.initial();
    let (_, fcs) = pm.initial_fit(&initial, &spec.sgd, &mut ledger);
    for (raw, fc) in initial.into_iter().zip(fcs) {
        dm.ingest_raw(raw).expect("unique timestamps");
        dm.store_features(fc).expect("raw chunk present");
    }
    let (pipeline0, trainer0) = pm.snapshot();
    let server = ModelServer::new(pipeline0, trainer0.model().clone());

    let stop = Arc::new(AtomicBool::new(false));

    // Query threads: hammer the server with queries from late chunks.
    let query_threads: Vec<_> = (0..3)
        .map(|t| {
            let server = server.clone();
            let stop = Arc::clone(&stop);
            let chunk = stream.chunk(stream.total_chunks() - 1 - t);
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut versions_seen = std::collections::BTreeSet::new();
                // At least one full pass even if training finishes first
                // (tiny streams train in microseconds).
                loop {
                    for record in &chunk.records {
                        if let Some(p) = server.predict(record) {
                            versions_seen.insert(p.version);
                            served += 1;
                        }
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                (served, versions_seen.len())
            })
        })
        .collect();

    // Training thread = this thread: run the deployment loop, publishing
    // after every chunk's online update and every proactive training.
    let proactive = ProactiveTrainer::new();
    let mut evaluator = PrequentialEvaluator::new(spec.metric, 0);
    let mut since = 0usize;
    let mut publishes = 0u64;
    for idx in stream.deployment_range() {
        let raw = stream.chunk(idx);
        dm.ingest_raw(raw.clone()).expect("unique timestamps");
        let fc = pm.process_online_chunk(&raw, &mut evaluator, &mut ledger);
        dm.store_features(fc).expect("raw chunk present");
        since += 1;
        if since >= spec.proactive_every {
            since = 0;
            let sampled = dm.sample(spec.sample_chunks);
            proactive.execute(&mut pm, sampled, &mut ledger);
        }
        let (pipeline, trainer) = pm.snapshot();
        server.publish(pipeline, trainer.model().clone());
        publishes += 1;
    }
    stop.store(true, Ordering::Relaxed);

    let mut total_served = 0u64;
    let mut max_versions = 0usize;
    for t in query_threads {
        let (served, versions) = t.join().expect("query thread lives");
        total_served += served;
        max_versions = max_versions.max(versions);
    }

    println!("training thread: published {publishes} model versions");
    println!(
        "query threads: served {total_served} predictions across ≥{max_versions} distinct versions"
    );
    println!("final prequential error: {:.4}", evaluator.error());
    println!(
        "server counters: {} served, {} rejected",
        server.queries_served(),
        server.queries_rejected()
    );
    assert!(total_served > 0);
    assert_eq!(server.version(), publishes + 1);
}
