//! Kill-and-resume recovery tests: a deployment killed at an injected crash
//! point and resumed from its newest durable checkpoint must be bit-identical
//! to an uninterrupted run — same weights, prequential curve, accounted cost,
//! storage counters, and alerts (DESIGN.md §12).
//!
//! Comparison rules: `checkpoint.*`, `wal.*`, and `engine.scratch_*` metrics
//! and `DeploymentResult::checkpoint_stats` / `wal_stats` are excluded (they
//! legitimately differ between an uninterrupted run and a crash-resume pair —
//! the scratch pool is transient process state), wall-clock histograms are
//! compared by observation count only, and event/lineage timestamps (wall
//! clock under `Metrics::collecting`) are ignored in favour of their
//! deterministic payloads.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cdpipe::core::serving::{weights_fingerprint, ModelServer};
use cdpipe::datagen::url::UrlGenerator;
use cdpipe::ml::LinearModel;
use cdpipe::obs::MetricsSnapshot;
use cdpipe::prelude::*;
use cdpipe::storage::CheckpointDir;
use proptest::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A test-private checkpoint directory that never collides across parallel
/// tests or repeated runs of one process.
fn ckpt_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cdp-ckpt-test-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn tiny_url() -> (UrlGenerator, DeploymentSpec) {
    url_spec(SpecScale::Tiny)
}

/// Histograms fed from the virtual cost model rather than wall time: their
/// full snapshot (buckets, sum, min, max) is part of the identity contract.
const EXACT_HISTOGRAMS: [&str; 2] = ["scheduler.fire_margin_secs", "proactive.accounted_secs"];

fn without_checkpoint_keys<V: Clone>(m: &BTreeMap<String, V>) -> BTreeMap<String, V> {
    // `engine.scratch_*` tracks the trainer's gradient-buffer pool, which is
    // transient process state: a resumed process starts with a cold pool and
    // re-allocates buffers the uninterrupted run reused, so those sample
    // counts legitimately differ across a crash-resume pair (the gradients
    // themselves stay bit-identical — a reset buffer equals a fresh one).
    m.iter()
        .filter(|(k, _)| {
            !k.starts_with("checkpoint.")
                && !k.starts_with("wal.")
                && !k.starts_with("engine.scratch_")
        })
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

fn check_metrics(a: &MetricsSnapshot, b: &MetricsSnapshot) -> Result<(), String> {
    if without_checkpoint_keys(&a.counters) != without_checkpoint_keys(&b.counters) {
        return Err(format!(
            "counters diverge: {:?} vs {:?}",
            without_checkpoint_keys(&a.counters),
            without_checkpoint_keys(&b.counters)
        ));
    }
    let gauge_bits = |m: &BTreeMap<String, f64>| -> BTreeMap<String, u64> {
        without_checkpoint_keys(m)
            .into_iter()
            .map(|(k, v)| (k, v.to_bits()))
            .collect()
    };
    if gauge_bits(&a.gauges) != gauge_bits(&b.gauges) {
        return Err(format!(
            "gauges diverge: {:?} vs {:?}",
            without_checkpoint_keys(&a.gauges),
            without_checkpoint_keys(&b.gauges)
        ));
    }
    let ha = without_checkpoint_keys(&a.histograms);
    let hb = without_checkpoint_keys(&b.histograms);
    if ha.keys().collect::<Vec<_>>() != hb.keys().collect::<Vec<_>>() {
        return Err(format!(
            "histogram keys diverge: {:?} vs {:?}",
            ha.keys().collect::<Vec<_>>(),
            hb.keys().collect::<Vec<_>>()
        ));
    }
    for (name, x) in &ha {
        let y = &hb[name];
        if EXACT_HISTOGRAMS.contains(&name.as_str()) {
            if x != y {
                return Err(format!("histogram {name} diverges: {x:?} vs {y:?}"));
            }
        } else if (x.count, x.dropped) != (y.count, y.dropped) {
            // Wall-clock histograms: the number of observations is
            // deterministic, the observed durations are not.
            return Err(format!(
                "histogram {name} count diverges: {} vs {}",
                x.count, y.count
            ));
        }
    }
    let payloads = |s: &MetricsSnapshot| -> Vec<(String, String)> {
        s.events
            .iter()
            .filter(|e| !e.name.starts_with("checkpoint.") && !e.name.starts_with("wal."))
            .map(|e| (e.name.clone(), e.detail.clone()))
            .collect()
    };
    if payloads(a) != payloads(b) {
        return Err(format!(
            "events diverge: {:?} vs {:?}",
            payloads(a),
            payloads(b)
        ));
    }
    let kinds = |s: &MetricsSnapshot| -> BTreeMap<u64, Vec<LineageEventKind>> {
        s.lineage
            .iter()
            .map(|(ts, es)| (*ts, es.iter().map(|e| e.kind).collect()))
            .collect()
    };
    if kinds(a) != kinds(b) {
        return Err("lineage diverges".into());
    }
    if (a.dropped_events, a.dropped_lineage) != (b.dropped_events, b.dropped_lineage) {
        return Err("drop counters diverge".into());
    }
    Ok(())
}

/// The bit-identity contract between an uninterrupted run and a resumed one.
fn check_identical(a: &DeploymentResult, b: &DeploymentResult) -> Result<(), String> {
    if a.final_weights != b.final_weights {
        return Err("final weights diverge".into());
    }
    if a.error_curve != b.error_curve {
        return Err(format!(
            "error curves diverge: {:?} vs {:?}",
            a.error_curve, b.error_curve
        ));
    }
    if a.cost_curve != b.cost_curve {
        return Err("cost curves diverge".into());
    }
    if a.final_error.to_bits() != b.final_error.to_bits()
        || a.average_error.to_bits() != b.average_error.to_bits()
    {
        return Err(format!(
            "errors diverge: {} vs {}",
            a.final_error, b.final_error
        ));
    }
    let accounted = |r: &DeploymentResult| {
        [
            r.preprocessing_secs.to_bits(),
            r.training_secs.to_bits(),
            r.prediction_secs.to_bits(),
            r.io_secs.to_bits(),
            r.total_secs.to_bits(),
        ]
    };
    if accounted(a) != accounted(b) {
        return Err(format!(
            "accounted cost diverges: {} vs {}",
            a.total_secs, b.total_secs
        ));
    }
    if (a.queries_answered, a.proactive_runs, a.retrain_runs)
        != (b.queries_answered, b.proactive_runs, b.retrain_runs)
    {
        return Err("run counters diverge".into());
    }
    if a.avg_proactive_secs.to_bits() != b.avg_proactive_secs.to_bits() {
        return Err("avg proactive secs diverge".into());
    }
    if a.store_stats != b.store_stats {
        return Err(format!(
            "store stats diverge: {:?} vs {:?}",
            a.store_stats, b.store_stats
        ));
    }
    if a.tiered_stats != b.tiered_stats {
        return Err(format!(
            "tiered stats diverge: {:?} vs {:?}",
            a.tiered_stats, b.tiered_stats
        ));
    }
    if a.fault_stats != b.fault_stats {
        return Err(format!(
            "fault stats diverge: {:?} vs {:?}",
            a.fault_stats, b.fault_stats
        ));
    }
    if a.initial_report.final_loss.to_bits() != b.initial_report.final_loss.to_bits() {
        return Err("initial training reports diverge".into());
    }
    if a.alerts != b.alerts {
        return Err(format!("alerts diverge: {:?} vs {:?}", a.alerts, b.alerts));
    }
    check_metrics(&a.metrics, &b.metrics)
}

fn assert_identical(label: &str, a: &DeploymentResult, b: &DeploymentResult) {
    if let Err(e) = check_identical(a, b) {
        panic!("{label}: {e}");
    }
}

fn continuous_cfg() -> DeploymentConfig {
    let mut cfg = DeploymentConfig::continuous(2, 3, SamplingStrategy::Uniform);
    cfg.optimization.budget = StorageBudget::MaxChunks(5);
    cfg.collect_metrics = true;
    cfg
}

fn crash_plan(site: CrashSite, at: u64) -> FaultPlan {
    FaultPlan {
        crash_site: Some(site),
        crash_at: at,
        ..FaultPlan::none()
    }
}

#[test]
fn chunk_boundary_crash_resumes_bit_identically() {
    let (stream, spec) = tiny_url();
    let baseline = run_deployment(&stream, &spec, &continuous_cfg());

    let dir = ckpt_dir("chunk-boundary");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(2).keep(2));
    cfg.faults = crash_plan(CrashSite::ChunkBoundary, 7);
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(CrashSite::ChunkBoundary)) => {}
        other => panic!("expected a chunk-boundary crash, got {other:?}"),
    }

    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert_eq!(resumed.checkpoint_stats.restores, 1);
    assert!(resumed.checkpoint_stats.writes > 0);
    assert_identical("chunk-boundary crash", &baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn proactive_fire_crash_resumes_bit_identically() {
    let (stream, spec) = tiny_url();
    let baseline = run_deployment(&stream, &spec, &continuous_cfg());

    let dir = ckpt_dir("fire");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(1).keep(3));
    cfg.faults = crash_plan(CrashSite::ProactiveFire, 2);
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(CrashSite::ProactiveFire)) => {}
        other => panic!("expected a proactive-fire crash, got {other:?}"),
    }

    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert_eq!(resumed.checkpoint_stats.restores, 1);
    assert_identical("proactive-fire crash", &baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_write_leaves_temp_file_and_falls_back() {
    let (stream, spec) = tiny_url();
    let baseline = run_deployment(&stream, &spec, &continuous_cfg());

    let dir = ckpt_dir("torn");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(1).keep(3));
    // The 6th consult of the checkpoint-write site dies mid-write, after
    // five durable checkpoints already exist.
    cfg.faults = crash_plan(CrashSite::CheckpointWrite, 5);
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(CrashSite::CheckpointWrite)) => {}
        other => panic!("expected a checkpoint-write crash, got {other:?}"),
    }
    // The interrupted write is visible only as a torn temp file.
    let torn = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .count();
    assert_eq!(torn, 1, "expected exactly one torn temp file");

    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert_eq!(resumed.checkpoint_stats.restores, 1);
    assert_identical("torn checkpoint write", &baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_latest_checkpoint_falls_back_to_previous() {
    let (stream, spec) = tiny_url();
    let dir = ckpt_dir("corrupt");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(2).keep(4));
    let completed = run_deployment(&stream, &spec, &cfg);
    assert!(completed.checkpoint_stats.writes >= 2);

    // Flip one payload byte of the newest checkpoint: the CRC trailer must
    // reject it and recovery must fall back to its predecessor, replaying
    // the tail chunks to the same final state.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cdpk"))
        .collect();
    files.sort();
    let newest = files.last().expect("at least one checkpoint");
    let mut bytes = std::fs::read(newest).expect("read checkpoint");
    bytes[8] ^= 0x01;
    std::fs::write(newest, &bytes).expect("corrupt checkpoint");

    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert_identical("corrupted latest checkpoint", &completed, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_surfaces_corrupt_component_state_as_typed_error() {
    use cdpipe::pipeline::PipelineError;

    let (stream, spec) = tiny_url();
    let dir = ckpt_dir("corrupt-state");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(2).keep(4));
    run_deployment(&stream, &spec, &cfg);

    // Truncate one stateful component's payload inside the newest checkpoint
    // and re-frame it with a valid CRC: the envelope layer accepts the file,
    // so the damage must surface as a typed restore error — not be silently
    // swallowed, leaving a cold component behind a warm-looking pipeline.
    let ckpts = CheckpointDir::open(&dir, 4).expect("open checkpoint dir");
    let (seq, version, payload) = ckpts
        .latest_valid_versioned()
        .expect("read checkpoints")
        .expect("at least one checkpoint");
    let mut ckpt = DeploymentCheckpoint::decode_versioned(version, &payload).expect("decode");
    let stateful = ckpt
        .component_states
        .iter()
        .position(|s| !s.is_empty())
        .expect("a stateful component");
    ckpt.component_states[stateful].pop();
    ckpts
        .write(seq + 1, &ckpt.encode())
        .expect("write doctored checkpoint");

    match try_resume_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Pipeline(PipelineError::CorruptState { .. })) => {}
        other => panic!("expected a CorruptState error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_checkpoint_config_is_a_typed_error() {
    let (stream, spec) = tiny_url();
    let cfg = continuous_cfg();
    match try_resume_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::NoCheckpoint(_)) => {}
        other => panic!("expected NoCheckpoint, got {other:?}"),
    }
}

#[test]
fn resume_from_empty_directory_is_a_typed_error() {
    let (stream, spec) = tiny_url();
    let dir = ckpt_dir("empty");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir));
    match try_resume_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::NoCheckpoint(detail)) => {
            assert!(detail.contains("no valid checkpoint"));
        }
        other => panic!("expected NoCheckpoint, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointing_does_not_perturb_the_run() {
    // The no-checkpoint and checkpoint-every-chunk runs must be identical
    // on every deterministic surface: checkpointing observes the loop, it
    // never steers it.
    let (stream, spec) = tiny_url();
    let plain = run_deployment(&stream, &spec, &continuous_cfg());
    let dir = ckpt_dir("perturb");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(1).keep(2));
    let checkpointed = run_deployment(&stream, &spec, &cfg);
    assert_identical("checkpointing perturbation", &plain, &checkpointed);
    let _ = std::fs::remove_dir_all(&dir);
}

fn mode_config(mode_idx: usize) -> DeploymentConfig {
    let mut cfg = match mode_idx {
        0 => DeploymentConfig::online(),
        1 => DeploymentConfig::periodical(3),
        _ => DeploymentConfig::continuous(2, 3, SamplingStrategy::Uniform),
    };
    cfg.optimization.budget = StorageBudget::MaxChunks(5);
    cfg.collect_metrics = true;
    cfg
}

const CRASH_SITES: [CrashSite; 5] = [
    CrashSite::ChunkBoundary,
    CrashSite::ProactiveFire,
    CrashSite::CheckpointWrite,
    CrashSite::WalAppend,
    CrashSite::WalRotate,
];

proptest! {
    /// Sweeps seeded crash points across the three deployment modes with
    /// spill on and off, WAL off/unbatched/batched: every kill either
    /// resumes to a bit-identical end state, or — when the crash predates
    /// the first durable checkpoint — reports the typed `NoCheckpoint`
    /// fallback-to-scratch condition. (A WAL crash site with the WAL
    /// disabled never fires; the run then completes and must still match
    /// the baseline.)
    #[test]
    fn every_seeded_kill_resumes_bit_identically(
        mode_idx in 0usize..3,
        spill in prop::bool::ANY,
        site_idx in 0usize..5,
        crash_at in 0u64..8,
        interval in 1usize..4,
        wal_idx in 0usize..3,
    ) {
        let (stream, spec) = tiny_url();
        let mut baseline_cfg = mode_config(mode_idx);
        baseline_cfg.spill_to_disk = spill;
        let baseline = run_deployment(&stream, &spec, &baseline_cfg);

        let dir = ckpt_dir("sweep");
        let mut cfg = baseline_cfg.clone();
        cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(interval).keep(2));
        if wal_idx > 0 {
            let batch = if wal_idx == 1 { 1 } else { 8 };
            cfg.wal = Some(WalConfig::new(dir.join("wal")).fsync_every(batch));
        }
        cfg.faults = crash_plan(CRASH_SITES[site_idx], crash_at);

        match try_run_deployment(&stream, &spec, &cfg) {
            Ok(completed) => {
                // The crash countdown never fired (e.g. the site is not on
                // this mode's path): the checkpointed run itself must match.
                prop_assert!(
                    check_identical(&baseline, &completed).is_ok(),
                    "completed run diverged: {:?}",
                    check_identical(&baseline, &completed)
                );
            }
            Err(DeploymentError::Crashed(_)) => {
                match try_resume_deployment(&stream, &spec, &cfg) {
                    Ok(resumed) => {
                        prop_assert_eq!(resumed.checkpoint_stats.restores, 1);
                        prop_assert!(
                            check_identical(&baseline, &resumed).is_ok(),
                            "resumed run diverged: {:?}",
                            check_identical(&baseline, &resumed)
                        );
                    }
                    // Killed before the first durable checkpoint: recovery
                    // legitimately reports nothing-to-resume-from.
                    Err(DeploymentError::NoCheckpoint(_)) => {}
                    Err(other) => return Err(format!("resume failed: {other}")),
                }
            }
            Err(other) => return Err(format!("run failed: {other}")),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The CI crash-recovery matrix entry point: seed and cadence come from the
/// environment (`CDP_FAULT_SEED`, `CDP_CKPT_INTERVAL`), checkpoints land
/// under `target/ci-checkpoints/` so the workflow can upload them as
/// artifacts when the assertion fails.
#[test]
fn ci_matrix_crash_recovery_smoke() {
    let seed: u64 = std::env::var("CDP_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let interval: usize = std::env::var("CDP_CKPT_INTERVAL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("ci-checkpoints")
        .join(format!("seed-{seed}-every-{interval}"));
    let _ = std::fs::remove_dir_all(&dir);

    let (stream, spec) = tiny_url();
    // Disk faults plus spill exercise the restored FaultInjector state: the
    // resumed run must keep injecting exactly where the uninterrupted run
    // would have.
    let faults = FaultPlan {
        seed,
        disk_read_error: 0.05,
        disk_write_error: 0.05,
        ..FaultPlan::none()
    };
    let mut baseline_cfg = continuous_cfg();
    baseline_cfg.spill_to_disk = true;
    baseline_cfg.faults = faults;
    let baseline = run_deployment(&stream, &spec, &baseline_cfg);

    let mut cfg = baseline_cfg.clone();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(interval).keep(2));
    cfg.faults = FaultPlan {
        crash_site: Some(CrashSite::ChunkBoundary),
        crash_at: 10,
        ..faults
    };
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(CrashSite::ChunkBoundary)) => {}
        other => panic!("expected a chunk-boundary crash, got {other:?}"),
    }
    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert_eq!(resumed.checkpoint_stats.restores, 1);
    assert_identical("ci matrix smoke", &baseline, &resumed);
    // Leave the checkpoint directory in place for artifact upload.
}

/// A serving front attached to a resumed deployment must serve the
/// *restored* version first: the resume path publishes the checkpointed
/// `(pipeline, model)` pair before re-entering the chunk loop, so a server
/// still holding the crashed process's last (stale, post-checkpoint)
/// snapshot is overwritten before any query can be answered from it — and
/// the publish event log proves which weights each publish carried, by
/// fingerprint.
#[test]
fn resumed_deployment_publishes_restored_version_before_serving() {
    let (stream, spec) = tiny_url();
    let baseline = run_deployment(&stream, &spec, &continuous_cfg());

    let dir = ckpt_dir("serving-resume");
    let mut cfg = continuous_cfg();
    // Checkpoint every 4 chunks, crash on the 7th boundary: the last
    // durable checkpoint predates the crash by several chunks, so the
    // crashed process's serving snapshot is genuinely *ahead* of (stale
    // relative to) the authoritative restored state.
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(4).keep(2));
    cfg.faults = crash_plan(CrashSite::ChunkBoundary, 6);
    let server = ModelServer::new(spec.build_pipeline(), LinearModel::zeros(1, spec.sgd.loss));
    cfg.serving = Some(server.clone());
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(CrashSite::ChunkBoundary)) => {}
        other => panic!("expected a chunk-boundary crash, got {other:?}"),
    }
    let stale = server.snapshot();
    let fp_stale = weights_fingerprint(stale.model.weights().as_slice());

    // Decode the newest durable checkpoint directly: these weights — not
    // the stale ones — must be the first thing published on resume.
    let (_, payload) = CheckpointDir::open(&dir, 2)
        .expect("open checkpoint dir")
        .latest_valid()
        .expect("list checkpoints")
        .expect("a durable checkpoint exists");
    let ckpt = DeploymentCheckpoint::decode(&payload).expect("decode checkpoint");
    let fp_restored = weights_fingerprint(&ckpt.weights);
    assert_ne!(
        fp_stale, fp_restored,
        "the crashed server must hold weights newer than the checkpoint"
    );

    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");

    // The first publish after the restore event carries exactly the
    // checkpointed weights, tagged as the restore-site publish — and the
    // stale fingerprint never appears again after the restore.
    let events = &resumed.metrics.events;
    let restore_at = events
        .iter()
        .position(|e| e.name == "checkpoint.restore")
        .expect("restore event");
    let mut publishes_after = events[restore_at..]
        .iter()
        .filter(|e| e.name == "serving.publish");
    let first = publishes_after.next().expect("restore-site publish");
    assert!(
        first.detail.starts_with("restore version "),
        "first post-restore publish must come from the restore site: {}",
        first.detail
    );
    assert!(
        first.detail.ends_with(&format!("fp {fp_restored:016x}")),
        "restore publish must carry the checkpointed weights: {}",
        first.detail
    );
    // (The stale fingerprint legitimately *reappears* later: the resumed
    // loop re-processes the crashed chunks bit-identically, so when it
    // reaches the chunk the crashed process had last published, it publishes
    // the same weights — as a fresh, authoritative version. What matters is
    // that nothing was served from the stale snapshot before the restore
    // publish, which the "first post-restore publish" assertions above pin.)

    // After the resumed run completes, the attached server holds the same
    // final weights as the uninterrupted serving-less baseline — attaching
    // a server never perturbs training.
    assert_eq!(resumed.final_weights, baseline.final_weights);
    let final_snap = server.snapshot();
    assert_eq!(
        final_snap.model.weights().as_slice(),
        baseline.final_weights.as_slice()
    );
    // Versions stayed monotone across crash + resume on the shared server.
    assert_eq!(final_snap.version, server.version());
    let _ = std::fs::remove_dir_all(&dir);
}
