//! Allocation accounting for the fused transform+gradient pass: the fused
//! step must never materialize an intermediate feature buffer, so for the
//! same workload it allocates strictly less — in both count and bytes — than
//! the materialize-then-step path it replaced.
//!
//! This file holds exactly one `#[test]` so the counting global allocator
//! sees no interference from sibling tests running on other harness threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use cdpipe::engine::ExecutionEngine;
use cdpipe::faults::NoFaults;
use cdpipe::ml::{LossKind, SgdConfig, SgdTrainer};
use cdpipe::obs::{Metrics, Tracer};
use cdpipe::pipeline::encode::DenseEncoder;
use cdpipe::pipeline::parser::SchemaParser;
use cdpipe::pipeline::scale::StandardScaler;
use cdpipe::pipeline::{Pipeline, PipelineBuilder};
use cdpipe::storage::{LabeledPoint, RawChunk, Record, RowView, Schema, Timestamp, Value};

struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(
                new_size.saturating_sub(layout.size()) as u64,
                Ordering::Relaxed,
            );
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on; returns (result, allocs, bytes).
fn measure<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    let out = f();
    ENABLED.store(false, Ordering::Relaxed);
    (
        out,
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

fn pipeline() -> Pipeline {
    let schema = Schema::new(["y", "x"]);
    PipelineBuilder::new(SchemaParser::new(schema, "y", &["x"], None))
        .add(StandardScaler::new())
        .encoder(DenseEncoder::new(1))
        .unwrap()
}

fn chunk(ts: u64, rows: u64) -> RawChunk {
    RawChunk::new(
        Timestamp(ts),
        (0..rows)
            .map(|i| {
                let x = (ts * rows + i) as f64;
                Record::new(vec![Value::Num(2.0 * x + 1.0), Value::Num(x)])
            })
            .collect(),
    )
}

#[test]
fn fused_step_allocates_less_than_materialize_then_step() {
    let engine = ExecutionEngine::Sequential;
    let config = SgdConfig::for_loss(LossKind::Squared);
    let raws: Vec<RawChunk> = (0..4).map(|t| chunk(t, 64)).collect();

    // Warm one shared template pipeline (component statistics) outside the
    // measured region, exactly as a deployment would have by proactive time.
    let mut template = pipeline();
    for raw in &raws {
        let _ = template.transform_chunk(raw);
    }

    // Unfused baseline: re-materialize every chunk into a FeatureChunk, then
    // feed the union batch to the sharded step.
    let mut unfused_trainer = SgdTrainer::new(1, &config);
    let ((), unfused_allocs, unfused_bytes) = measure(|| {
        let chunks: Vec<_> = raws
            .iter()
            .map(|raw| {
                let mut local = template.clone();
                local.reset_counters();
                local.transform_chunk(raw)
            })
            .collect();
        let batch: Vec<RowView<'_>> = chunks.iter().flat_map(|c| c.rows()).collect();
        let loss = unfused_trainer.step_rows(&batch, engine);
        assert!(loss.is_some());
    });

    // Fused path: same template clones, same rows, but every point flows
    // straight from the encoder into the gradient accumulator.
    let mut fused_trainer = SgdTrainer::new(1, &config);
    let (outcome, fused_allocs, fused_bytes) = measure(|| {
        fused_trainer
            .try_step_fused_on(
                raws.len(),
                |i, sink: &mut dyn FnMut(RowView<'_>)| {
                    let mut local = template.clone();
                    local.reset_counters();
                    local.transform_chunk_fold(&raws[i], &mut |p| sink(RowView::Point(p)));
                },
                engine,
                &NoFaults,
                &Metrics::disabled(),
                &Tracer::disabled(),
                None,
            )
            .expect("fused step")
    });

    assert!(outcome.loss.is_some());
    assert_eq!(outcome.points, 4 * 64);

    // Both paths pay the same transient per-row vector allocations inside
    // the encoder, so raw allocation *counts* land within a few of each
    // other. The structural difference is the buffers that exist only on
    // the unfused path: one `Vec<LabeledPoint>` per chunk plus the union
    // batch vector. The fused pass must therefore save at least the bytes
    // of the materialized point arrays, engine overhead included.
    let materialized_floor = (raws.len() * 64 * std::mem::size_of::<LabeledPoint>()) as u64;
    assert!(
        fused_bytes + materialized_floor <= unfused_bytes,
        "fused path must save at least the materialized point buffers: \
         fused {fused_bytes} + floor {materialized_floor} vs unfused {unfused_bytes} \
         (allocs: fused {fused_allocs}, unfused {unfused_allocs})"
    );

    // A second fused step on the warm trainer reuses pooled gradient
    // buffers instead of allocating fresh ones.
    let (_, _, warm_bytes) = measure(|| {
        fused_trainer
            .try_step_fused_on(
                raws.len(),
                |i, sink: &mut dyn FnMut(RowView<'_>)| {
                    let mut local = template.clone();
                    local.reset_counters();
                    local.transform_chunk_fold(&raws[i], &mut |p| sink(RowView::Point(p)));
                },
                engine,
                &NoFaults,
                &Metrics::disabled(),
                &Tracer::disabled(),
                None,
            )
            .expect("warm fused step")
    });
    let (reused, allocated) = fused_trainer.scratch_counters();
    assert!(reused > 0, "warm fused step must reuse scratch buffers");
    assert!(allocated > 0);
    assert!(
        warm_bytes <= fused_bytes,
        "warm scratch pool should not allocate more than the cold one: {warm_bytes} vs {fused_bytes}"
    );
}
