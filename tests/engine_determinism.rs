//! Property: the execution engine is an implementation detail. A Continuous
//! deployment run on a persistent worker pool of any size must be
//! bit-identical — prequential error, model weights, accounted cost — to
//! the sequential run, on both paper pipelines.

use cdpipe::core::deployment::{run_deployment, DeploymentConfig, DeploymentResult};
use cdpipe::core::presets::{taxi_spec, url_spec, SpecScale};
use cdpipe::engine::ExecutionEngine;
use cdpipe::sampling::SamplingStrategy;
use cdpipe::storage::StorageBudget;
use proptest::prelude::*;

fn continuous_config(bounded_cache: bool) -> DeploymentConfig {
    let mut config = DeploymentConfig::continuous(2, 3, SamplingStrategy::TimeBased);
    if bounded_cache {
        // Force sampled chunks through engine-parallel re-materialization.
        config.optimization.budget = StorageBudget::MaxChunks(5);
    }
    config
}

fn run_on(url: bool, config: &DeploymentConfig) -> DeploymentResult {
    if url {
        let (stream, spec) = url_spec(SpecScale::Tiny);
        run_deployment(&stream, &spec, config)
    } else {
        let (stream, spec) = taxi_spec(SpecScale::Tiny);
        run_deployment(&stream, &spec, config)
    }
}

proptest! {
    /// Continuous deployment with `Threaded { workers ∈ 1..8 }` reproduces
    /// the sequential run bit for bit on the URL and Taxi presets.
    #[test]
    fn threaded_continuous_deployment_is_bit_identical(
        workers in 1usize..8,
        url in prop::bool::ANY,
        bounded_cache in prop::bool::ANY,
    ) {
        let sequential = run_on(url, &continuous_config(bounded_cache));
        let mut threaded_cfg = continuous_config(bounded_cache);
        threaded_cfg.engine = ExecutionEngine::Threaded { workers };
        let threaded = run_on(url, &threaded_cfg);

        // Prequential error, at every checkpoint and at the end.
        prop_assert_eq!(
            sequential.final_error.to_bits(),
            threaded.final_error.to_bits()
        );
        prop_assert_eq!(&sequential.error_curve, &threaded.error_curve);
        // Model weights.
        prop_assert_eq!(&sequential.final_weights, &threaded.final_weights);
        // Cost-ledger totals.
        prop_assert_eq!(
            sequential.total_secs.to_bits(),
            threaded.total_secs.to_bits()
        );
        prop_assert_eq!(
            sequential.training_secs.to_bits(),
            threaded.training_secs.to_bits()
        );
        prop_assert_eq!(sequential.proactive_runs, threaded.proactive_runs);
    }
}
