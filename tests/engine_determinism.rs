//! Property: the execution engine is an implementation detail. A Continuous
//! deployment run on a persistent worker pool of any size must be
//! bit-identical — prequential error, model weights, accounted cost — to
//! the sequential run, on both paper pipelines.

use cdpipe::core::deployment::{
    run_deployment, try_run_deployment, DeploymentConfig, DeploymentError, DeploymentResult,
};
use cdpipe::core::presets::{taxi_spec, url_spec, SpecScale};
use cdpipe::engine::ExecutionEngine;
use cdpipe::faults::FaultPlan;
use cdpipe::sampling::SamplingStrategy;
use cdpipe::storage::StorageBudget;
use proptest::prelude::*;

fn continuous_config(bounded_cache: bool) -> DeploymentConfig {
    let mut config = DeploymentConfig::continuous(2, 3, SamplingStrategy::TimeBased);
    if bounded_cache {
        // Force sampled chunks through engine-parallel re-materialization.
        config.optimization.budget = StorageBudget::MaxChunks(5);
    }
    config
}

fn run_on(url: bool, config: &DeploymentConfig) -> DeploymentResult {
    if url {
        let (stream, spec) = url_spec(SpecScale::Tiny);
        run_deployment(&stream, &spec, config)
    } else {
        let (stream, spec) = taxi_spec(SpecScale::Tiny);
        run_deployment(&stream, &spec, config)
    }
}

fn try_run_on(url: bool, config: &DeploymentConfig) -> Result<DeploymentResult, DeploymentError> {
    if url {
        let (stream, spec) = url_spec(SpecScale::Tiny);
        try_run_deployment(&stream, &spec, config)
    } else {
        let (stream, spec) = taxi_spec(SpecScale::Tiny);
        try_run_deployment(&stream, &spec, config)
    }
}

proptest! {
    /// Continuous deployment with `Threaded { workers ∈ 1..8 }` reproduces
    /// the sequential run bit for bit on the URL and Taxi presets.
    #[test]
    fn threaded_continuous_deployment_is_bit_identical(
        workers in 1usize..8,
        url in prop::bool::ANY,
        bounded_cache in prop::bool::ANY,
    ) {
        let sequential = run_on(url, &continuous_config(bounded_cache));
        let mut threaded_cfg = continuous_config(bounded_cache);
        threaded_cfg.engine = ExecutionEngine::Threaded { workers };
        let threaded = run_on(url, &threaded_cfg);

        // Prequential error, at every checkpoint and at the end.
        prop_assert_eq!(
            sequential.final_error.to_bits(),
            threaded.final_error.to_bits()
        );
        prop_assert_eq!(&sequential.error_curve, &threaded.error_curve);
        // Model weights.
        prop_assert_eq!(&sequential.final_weights, &threaded.final_weights);
        // Cost-ledger totals.
        prop_assert_eq!(
            sequential.total_secs.to_bits(),
            threaded.total_secs.to_bits()
        );
        prop_assert_eq!(
            sequential.training_secs.to_bits(),
            threaded.training_secs.to_bits()
        );
        prop_assert_eq!(sequential.proactive_runs, threaded.proactive_runs);
    }

    /// Seeded worker-panic injection does not break engine equivalence:
    /// with the same fault seed, a threaded run under injected panics is
    /// bit-identical to the sequential run under the same plan — and both
    /// report the exact same fault accounting. Panic decisions are keyed by
    /// a per-call epoch, not by worker identity, so worker count cannot
    /// change what is injected; restarts happen before any input is
    /// consumed, so they cannot change the results.
    #[test]
    fn injected_worker_panics_preserve_bit_identity(
        workers in 1usize..8,
        fault_seed in 0u64..1_000,
        url in prop::bool::ANY,
    ) {
        let mut base = continuous_config(true);
        base.faults = FaultPlan {
            seed: fault_seed,
            worker_panic: 0.35,
            ..FaultPlan::none()
        };

        let sequential = try_run_on(url, &base);
        let mut threaded_cfg = base;
        threaded_cfg.engine = ExecutionEngine::Threaded { workers };
        let threaded = try_run_on(url, &threaded_cfg);

        match (sequential, threaded) {
            (Ok(sequential), Ok(threaded)) => {
                prop_assert_eq!(
                    sequential.final_error.to_bits(),
                    threaded.final_error.to_bits()
                );
                prop_assert_eq!(&sequential.error_curve, &threaded.error_curve);
                prop_assert_eq!(&sequential.final_weights, &threaded.final_weights);
                prop_assert_eq!(
                    sequential.total_secs.to_bits(),
                    threaded.total_secs.to_bits()
                );
                prop_assert_eq!(sequential.fault_stats, threaded.fault_stats);

                // The plan contains only recoverable worker faults, so the
                // run also matches the fault-free model exactly.
                let clean = run_on(url, &continuous_config(true));
                prop_assert_eq!(&clean.final_weights, &sequential.final_weights);
            }
            // A seed whose panic streak exhausts the restart budget is fatal
            // on *every* engine or on none: the decision is epoch-keyed, not
            // worker-keyed.
            (Err(_), Err(_)) => {}
            (s, t) => prop_assert!(
                false,
                "engines disagree on fatality: sequential ok={}, threaded ok={}",
                s.is_ok(),
                t.is_ok()
            ),
        }
    }
}
