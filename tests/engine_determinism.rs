//! Property: the execution engine is an implementation detail. A Continuous
//! deployment run on a persistent worker pool of any size must be
//! bit-identical — prequential error, model weights, accounted cost — to
//! the sequential run, on both paper pipelines.

use cdpipe::core::deployment::{
    run_deployment, try_resume_deployment, try_run_deployment, CheckpointConfig, DeploymentConfig,
    DeploymentError, DeploymentResult,
};
use cdpipe::core::presets::{taxi_spec, url_spec, SpecScale};
use cdpipe::engine::ExecutionEngine;
use cdpipe::faults::{CrashSite, FaultPlan};
use cdpipe::sampling::SamplingStrategy;
use cdpipe::storage::StorageBudget;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn continuous_config(bounded_cache: bool) -> DeploymentConfig {
    let mut config = DeploymentConfig::continuous(2, 3, SamplingStrategy::TimeBased);
    if bounded_cache {
        // Force sampled chunks through engine-parallel re-materialization.
        config.optimization.budget = StorageBudget::MaxChunks(5);
    }
    config
}

fn run_on(url: bool, config: &DeploymentConfig) -> DeploymentResult {
    if url {
        let (stream, spec) = url_spec(SpecScale::Tiny);
        run_deployment(&stream, &spec, config)
    } else {
        let (stream, spec) = taxi_spec(SpecScale::Tiny);
        run_deployment(&stream, &spec, config)
    }
}

fn try_run_on(url: bool, config: &DeploymentConfig) -> Result<DeploymentResult, DeploymentError> {
    if url {
        let (stream, spec) = url_spec(SpecScale::Tiny);
        try_run_deployment(&stream, &spec, config)
    } else {
        let (stream, spec) = taxi_spec(SpecScale::Tiny);
        try_run_deployment(&stream, &spec, config)
    }
}

proptest! {
    /// Continuous deployment with `Threaded { workers ∈ 1..8 }` reproduces
    /// the sequential run bit for bit on the URL and Taxi presets.
    #[test]
    fn threaded_continuous_deployment_is_bit_identical(
        workers in 1usize..8,
        url in prop::bool::ANY,
        bounded_cache in prop::bool::ANY,
    ) {
        let sequential = run_on(url, &continuous_config(bounded_cache));
        let mut threaded_cfg = continuous_config(bounded_cache);
        threaded_cfg.engine = ExecutionEngine::Threaded { workers };
        let threaded = run_on(url, &threaded_cfg);

        // Prequential error, at every checkpoint and at the end.
        prop_assert_eq!(
            sequential.final_error.to_bits(),
            threaded.final_error.to_bits()
        );
        prop_assert_eq!(&sequential.error_curve, &threaded.error_curve);
        // Model weights.
        prop_assert_eq!(&sequential.final_weights, &threaded.final_weights);
        // Cost-ledger totals.
        prop_assert_eq!(
            sequential.total_secs.to_bits(),
            threaded.total_secs.to_bits()
        );
        prop_assert_eq!(
            sequential.training_secs.to_bits(),
            threaded.training_secs.to_bits()
        );
        prop_assert_eq!(sequential.proactive_runs, threaded.proactive_runs);
    }

    /// Seeded worker-panic injection does not break engine equivalence:
    /// with the same fault seed, a threaded run under injected panics is
    /// bit-identical to the sequential run under the same plan — and both
    /// report the exact same fault accounting. Panic decisions are keyed by
    /// a per-call epoch, not by worker identity, so worker count cannot
    /// change what is injected; restarts happen before any input is
    /// consumed, so they cannot change the results.
    #[test]
    fn injected_worker_panics_preserve_bit_identity(
        workers in 1usize..8,
        fault_seed in 0u64..1_000,
        url in prop::bool::ANY,
    ) {
        let mut base = continuous_config(true);
        base.faults = FaultPlan {
            seed: fault_seed,
            worker_panic: 0.35,
            ..FaultPlan::none()
        };

        let sequential = try_run_on(url, &base);
        let mut threaded_cfg = base;
        threaded_cfg.engine = ExecutionEngine::Threaded { workers };
        let threaded = try_run_on(url, &threaded_cfg);

        match (sequential, threaded) {
            (Ok(sequential), Ok(threaded)) => {
                prop_assert_eq!(
                    sequential.final_error.to_bits(),
                    threaded.final_error.to_bits()
                );
                prop_assert_eq!(&sequential.error_curve, &threaded.error_curve);
                prop_assert_eq!(&sequential.final_weights, &threaded.final_weights);
                prop_assert_eq!(
                    sequential.total_secs.to_bits(),
                    threaded.total_secs.to_bits()
                );
                prop_assert_eq!(sequential.fault_stats, threaded.fault_stats);

                // The plan contains only recoverable worker faults, so the
                // run also matches the fault-free model exactly.
                let clean = run_on(url, &continuous_config(true));
                prop_assert_eq!(&clean.final_weights, &sequential.final_weights);
            }
            // A seed whose panic streak exhausts the restart budget is fatal
            // on *every* engine or on none: the decision is epoch-keyed, not
            // worker-keyed.
            (Err(_), Err(_)) => {}
            (s, t) => prop_assert!(
                false,
                "engines disagree on fatality: sequential ok={}, threaded ok={}",
                s.is_ok(),
                t.is_ok()
            ),
        }
    }

    /// Span collection is a pure observer: a traced threaded run is
    /// bit-identical to the untraced sequential run — with and without a
    /// recoverable fault plan active — so the steal-order nondeterminism
    /// the tracer records never leaks into results. This sweeps the full
    /// grid the fused proactive path must survive: worker count × fault
    /// plan × tracing on/off.
    #[test]
    fn tracing_never_perturbs_threaded_determinism(
        workers in 1usize..9,
        traced in prop::bool::ANY,
        faulted in prop::bool::ANY,
        url in prop::bool::ANY,
    ) {
        let mut base = continuous_config(true);
        if faulted {
            base.faults = FaultPlan {
                seed: 11,
                worker_panic: 0.2,
                ..FaultPlan::none()
            };
        }
        let baseline = try_run_on(url, &base).expect("baseline run");

        let mut cfg = base;
        cfg.engine = ExecutionEngine::Threaded { workers };
        cfg.collect_traces = traced;
        let run = try_run_on(url, &cfg).expect("traced threaded run");

        prop_assert_eq!(
            baseline.final_error.to_bits(),
            run.final_error.to_bits()
        );
        prop_assert_eq!(&baseline.error_curve, &run.error_curve);
        prop_assert_eq!(&baseline.final_weights, &run.final_weights);
        prop_assert_eq!(baseline.total_secs.to_bits(), run.total_secs.to_bits());
        prop_assert_eq!(baseline.fault_stats, run.fault_stats);
        // Tracing actually happened when requested.
        prop_assert_eq!(traced, !run.trace.spans.is_empty());
    }
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn ckpt_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "cdp-engine-det-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    /// Kill-and-resume on a work-stealing pool: a run crashed at a chunk
    /// boundary or mid proactive fire and resumed on a threaded engine ends
    /// bit-identical to the uninterrupted *sequential* run. The restored
    /// worker-fault epoch and trainer state cannot depend on how many
    /// workers the resumed pool has.
    #[test]
    fn threaded_resume_is_bit_identical_to_sequential(
        workers in 1usize..9,
        fire_site in prop::bool::ANY,
        crash_at in 1u64..6,
    ) {
        let baseline = run_on(true, &continuous_config(true));

        let dir = ckpt_dir();
        let mut cfg = continuous_config(true);
        cfg.engine = ExecutionEngine::Threaded { workers };
        cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(1).keep(2));
        cfg.faults = FaultPlan {
            crash_site: Some(if fire_site {
                CrashSite::ProactiveFire
            } else {
                CrashSite::ChunkBoundary
            }),
            crash_at,
            ..FaultPlan::none()
        };

        match try_run_on(true, &cfg) {
            Err(DeploymentError::Crashed(_)) => {
                let (stream, spec) = url_spec(SpecScale::Tiny);
                match try_resume_deployment(&stream, &spec, &cfg) {
                    Ok(resumed) => {
                        prop_assert_eq!(&baseline.final_weights, &resumed.final_weights);
                        prop_assert_eq!(&baseline.error_curve, &resumed.error_curve);
                        prop_assert_eq!(
                            baseline.final_error.to_bits(),
                            resumed.final_error.to_bits()
                        );
                        prop_assert_eq!(
                            baseline.total_secs.to_bits(),
                            resumed.total_secs.to_bits()
                        );
                        prop_assert_eq!(baseline.proactive_runs, resumed.proactive_runs);
                    }
                    // Crashed before the first durable checkpoint.
                    Err(DeploymentError::NoCheckpoint(_)) => {}
                    Err(other) => {
                        let _ = std::fs::remove_dir_all(&dir);
                        return Err(format!("resume failed: {other}"));
                    }
                }
            }
            Ok(completed) => {
                // The countdown outlived the run; the checkpointed threaded
                // run itself must still match the sequential baseline.
                prop_assert_eq!(&baseline.final_weights, &completed.final_weights);
            }
            Err(other) => {
                let _ = std::fs::remove_dir_all(&dir);
                return Err(format!("run failed: {other}"));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
