//! Source-level gate for the training hot path: the SGD inner loop and the
//! sparse kernel must not carry `.unwrap()` / `.expect(` outside their test
//! modules. A panic annotation in these files is a latent crash in the
//! deployment loop; invariants that are genuinely unreachable are written as
//! `match`/`unreachable!` with a comment explaining why, so the gate also
//! forces the justification to exist.

/// Everything before the first `#[cfg(test)]` marker — the shipped region.
fn non_test_region(source: &str) -> &str {
    source.split("#[cfg(test)]").next().unwrap_or(source)
}

#[test]
fn sgd_and_sparse_hot_paths_carry_no_panic_annotations() {
    let gated = [
        (
            "crates/ml/src/sgd.rs",
            include_str!("../crates/ml/src/sgd.rs"),
        ),
        (
            "crates/linalg/src/sparse.rs",
            include_str!("../crates/linalg/src/sparse.rs"),
        ),
    ];
    for (name, source) in gated {
        let shipped = non_test_region(source);
        assert!(
            shipped.len() < source.len(),
            "{name}: expected a #[cfg(test)] module splitting the file"
        );
        for token in [".unwrap()", ".expect("] {
            assert!(
                !shipped.contains(token),
                "{name}: `{token}` found outside #[cfg(test)] — rewrite the \
                 call as a match with an unreachable!/typed-error arm and a \
                 comment documenting the invariant"
            );
        }
    }
}
