//! Telemetry determinism and crash-recovery properties.
//!
//! Under an injected [`VirtualClock`] the telemetry timeline is pure data:
//! rerunning the same deployment — on any worker count — must reproduce the
//! ring-buffer store bit for bit, and turning telemetry on must never
//! perturb the deployment's results. After a seeded crash the flight
//! recorder's on-disk segments must reconstruct a valid timeline up to the
//! last flush, with torn or corrupt tail files skipped rather than fatal.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cdpipe::engine::ExecutionEngine;
use cdpipe::obs::{list_segment_files, segment_file_name, SEGMENT_EXT};
use cdpipe::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A test-private segment directory that never collides across parallel
/// tests or repeated runs of one process.
fn seg_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cdp-telemetry-test-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn telemetry_config() -> DeploymentConfig {
    let mut config = DeploymentConfig::continuous(2, 3, SamplingStrategy::Uniform);
    // A bounded cache exercises re-materialization (and its counters).
    config.optimization.budget = StorageBudget::MaxChunks(5);
    config.telemetry = Some(TelemetryConfig::new());
    config
}

/// Runs the telemetry workload with metrics stamped against a fresh
/// [`VirtualClock`], so every duration observation is deterministic.
fn run_virtual(config: &DeploymentConfig) -> DeploymentResult {
    let (stream, spec) = url_spec(SpecScale::Tiny);
    let metrics = Metrics::with_clock(Arc::new(VirtualClock::new()));
    try_run_deployment_observed(&stream, &spec, config, metrics).expect("deployment")
}

#[test]
fn telemetry_timeline_is_bit_identical_across_reruns_and_workers() {
    let baseline = run_virtual(&telemetry_config());
    assert!(
        baseline.telemetry.samples() > 0,
        "telemetry sampled nothing"
    );
    assert!(baseline.telemetry.series_count() > 0);

    // Rerun: same config, fresh virtual clock — the whole store matches,
    // including every export rendering.
    let rerun = run_virtual(&telemetry_config());
    assert_eq!(baseline.telemetry, rerun.telemetry);
    assert_eq!(
        baseline.telemetry.to_csv(),
        rerun.telemetry.to_csv(),
        "CSV export diverged across reruns"
    );

    // Worker count is an implementation detail: scheduling-dependent
    // `engine.*` series are excluded by default, so the sampled timeline
    // is identical on any pool size.
    for workers in [1usize, 4, 8] {
        let mut config = telemetry_config();
        config.engine = ExecutionEngine::Threaded { workers };
        let threaded = run_virtual(&config);
        assert_eq!(
            baseline.telemetry, threaded.telemetry,
            "telemetry diverged with {workers} workers"
        );
        assert_eq!(baseline.telemetry.to_json(), threaded.telemetry.to_json());
        assert_eq!(baseline.alerts, threaded.alerts);
    }
}

#[test]
fn telemetry_never_perturbs_the_deployment() {
    let (stream, spec) = url_spec(SpecScale::Tiny);
    let mut enabled = telemetry_config();
    enabled.collect_metrics = true;
    let observed = run_deployment(&stream, &spec, &enabled);

    let mut disabled = telemetry_config();
    disabled.telemetry = None;
    let baseline = run_deployment(&stream, &spec, &disabled);

    assert_eq!(baseline.final_weights, observed.final_weights);
    assert_eq!(baseline.error_curve, observed.error_curve);
    assert_eq!(baseline.cost_curve, observed.cost_curve);
    assert_eq!(
        baseline.final_error.to_bits(),
        observed.final_error.to_bits()
    );
    assert_eq!(baseline.total_secs.to_bits(), observed.total_secs.to_bits());
    assert_eq!(baseline.proactive_runs, observed.proactive_runs);
    assert_eq!(baseline.tiered_stats, observed.tiered_stats);
    // Only the telemetry store itself differs.
    assert_eq!(baseline.telemetry.samples(), 0);
    assert!(observed.telemetry.samples() > 0);
}

/// Crashes a seeded deployment with the flight recorder flushing every
/// sample, returning the segment directory.
fn crash_with_recorder(tag: &str) -> PathBuf {
    let dir = seg_dir(tag);
    let (stream, spec) = url_spec(SpecScale::Tiny);
    let mut config = telemetry_config();
    config.collect_metrics = true;
    config.spill_to_disk = true;
    config.optimization.budget = StorageBudget::MaxChunks(4);
    config.faults = FaultPlan {
        seed: 17,
        disk_write_error: 1.0,
        crash_site: Some(CrashSite::ChunkBoundary),
        crash_at: 5,
        ..FaultPlan::none()
    };
    config.telemetry =
        Some(TelemetryConfig::new().recorder(RecorderConfig::new(&dir).flush_every(1)));
    let err = try_run_deployment(&stream, &spec, &config).expect_err("run must crash");
    assert!(
        matches!(err, DeploymentError::Crashed(CrashSite::ChunkBoundary)),
        "unexpected failure: {err}"
    );
    dir
}

#[test]
fn crash_leaves_a_recoverable_timeline() {
    let dir = crash_with_recorder("crash");

    let scan = load_segments(&dir, 16).expect("scan segments");
    assert_eq!(scan.skipped, 0, "clean crash left undecodable segments");
    let newest = scan.segments.first().expect("no segments recovered");
    assert!(newest.samples > 0, "recovered timeline is empty");
    assert!(!newest.counters.is_empty());
    // The crash flush covers the chunks processed before the kill, and the
    // certain spill-write failure fired the lost-spills alert before it.
    assert!(
        newest
            .counters
            .keys()
            .any(|name| name == "deployment.chunks"),
        "timeline lost the chunk counter"
    );
    assert!(
        newest.alerts.iter().any(|a| a.rule == "store.lost_spills"),
        "lost-spills alert missing from the recovered timeline"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_and_corrupt_tails_are_skipped_not_fatal() {
    let dir = crash_with_recorder("torn");
    let files: Vec<PathBuf> = list_segment_files(&dir)
        .expect("list segments")
        .into_iter()
        .map(|(_, path)| path)
        .collect();
    assert!(!files.is_empty());

    // Tear the newest segment mid-write and scribble over the one before
    // it; drop a foreign file in for good measure.
    let newest = files.last().unwrap();
    let bytes = std::fs::read(newest).expect("read newest");
    std::fs::write(newest, &bytes[..bytes.len() / 2]).expect("tear newest");
    if files.len() > 1 {
        let prev = &files[files.len() - 2];
        let mut garbled = std::fs::read(prev).expect("read prev");
        let mid = garbled.len() / 2;
        garbled[mid] ^= 0xFF;
        std::fs::write(prev, garbled).expect("corrupt prev");
    }
    std::fs::write(dir.join(format!("zz-not-a-segment.{SEGMENT_EXT}")), b"junk")
        .expect("foreign file");
    std::fs::write(
        dir.join(segment_file_name(u64::MAX)).with_extension("tmp"),
        b"torn tmp",
    )
    .expect("tmp file");

    let scan = load_segments(&dir, 16).expect("scan survives corruption");
    assert!(scan.skipped >= 1, "corrupt tail was not detected");
    if files.len() > 2 {
        // Older, untouched segments still decode.
        let newest_valid = scan.segments.first().expect("all segments lost");
        assert!(newest_valid.samples > 0);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
