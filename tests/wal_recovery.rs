//! WAL-backed ingest recovery tests: a deployment killed *between*
//! checkpoints — including mid-group-commit (torn tail) and mid-rotation
//! (orphaned temp segment) — must resume to a bit-identical end state by
//! replaying checkpoint + WAL suffix (DESIGN.md §17), and the deployment
//! scenarios (sudden drift, bursty arrivals, out-of-order chunks) must run
//! end-to-end deterministically with the WAL enabled.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cdpipe::datagen::url::UrlGenerator;
use cdpipe::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A test-private directory that never collides across parallel tests.
fn test_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cdp-wal-test-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn tiny_url() -> (UrlGenerator, DeploymentSpec) {
    url_spec(SpecScale::Tiny)
}

fn continuous_cfg() -> DeploymentConfig {
    let mut cfg = DeploymentConfig::continuous(2, 3, SamplingStrategy::Uniform);
    cfg.optimization.budget = StorageBudget::MaxChunks(5);
    cfg.collect_metrics = true;
    cfg
}

fn crash_plan(site: CrashSite, at: u64) -> FaultPlan {
    FaultPlan {
        crash_site: Some(site),
        crash_at: at,
        ..FaultPlan::none()
    }
}

/// Counters with the legitimately-divergent prefixes removed (`checkpoint.*`
/// and `wal.*` describe durability activity, `engine.scratch_*` transient
/// process state — see tests/checkpoint_recovery.rs for the rationale).
fn identity_counters(m: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    m.iter()
        .filter(|(k, _)| {
            !k.starts_with("checkpoint.")
                && !k.starts_with("wal.")
                && !k.starts_with("engine.scratch_")
        })
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// The bit-identity surfaces of the kill-and-resume contract.
fn assert_identical(label: &str, a: &DeploymentResult, b: &DeploymentResult) {
    assert_eq!(a.final_weights, b.final_weights, "{label}: weights");
    assert_eq!(a.error_curve, b.error_curve, "{label}: error curve");
    assert_eq!(a.cost_curve, b.cost_curve, "{label}: cost curve");
    assert_eq!(
        a.total_secs.to_bits(),
        b.total_secs.to_bits(),
        "{label}: accounted cost"
    );
    assert_eq!(a.store_stats, b.store_stats, "{label}: store stats");
    assert_eq!(a.tiered_stats, b.tiered_stats, "{label}: tiered stats");
    assert_eq!(a.fault_stats, b.fault_stats, "{label}: fault stats");
    assert_eq!(a.alerts, b.alerts, "{label}: alerts");
    assert_eq!(
        identity_counters(&a.metrics.counters),
        identity_counters(&b.metrics.counters),
        "{label}: metric counters"
    );
}

fn segment_count(wal_dir: &PathBuf) -> usize {
    std::fs::read_dir(wal_dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "cdpw"))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn resume_with_empty_wal_replays_nothing_and_matches() {
    // A crash at a checkpoint boundary leaves nothing in the WAL beyond
    // what the checkpoint covers (fsync_every=1 keeps it fully GC'd):
    // recovery replays zero records and still lands bit-identical.
    let (stream, spec) = tiny_url();
    let baseline = run_deployment(&stream, &spec, &continuous_cfg());

    let dir = test_dir("empty");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(1).keep(2));
    cfg.wal = Some(WalConfig::new(dir.join("wal")).fsync_every(1));
    cfg.faults = crash_plan(CrashSite::ChunkBoundary, 5);
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(CrashSite::ChunkBoundary)) => {}
        other => panic!("expected a chunk-boundary crash, got {other:?}"),
    }

    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert_eq!(resumed.wal_stats.replayed, 0, "checkpoint covered the WAL");
    assert_identical("empty WAL resume", &baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_between_checkpoints_replays_the_wal_suffix() {
    // Checkpoint every 4 chunks, unbatched fsync, crash on a boundary
    // between checkpoints: the suffix since the last checkpoint exists
    // only in the WAL, and resume must replay it (not just the stream).
    let (stream, spec) = tiny_url();
    let baseline = run_deployment(&stream, &spec, &continuous_cfg());

    let dir = test_dir("between");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(4).keep(2));
    cfg.wal = Some(WalConfig::new(dir.join("wal")).fsync_every(1));
    cfg.faults = crash_plan(CrashSite::ChunkBoundary, 6);
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(CrashSite::ChunkBoundary)) => {}
        other => panic!("expected a chunk-boundary crash, got {other:?}"),
    }

    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert!(
        resumed.wal_stats.replayed > 0,
        "a mid-interval crash must leave a WAL suffix to replay: {:?}",
        resumed.wal_stats
    );
    assert!(
        resumed.wal_stats.skipped >= resumed.wal_stats.replayed,
        "replayed appends must be idempotently skipped: {:?}",
        resumed.wal_stats
    );
    assert_identical("between-checkpoint crash", &baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_final_record_is_truncated_and_resume_matches() {
    // A wal-append crash tears the group-commit buffer mid-write: half the
    // pending bytes land unsynced in the active segment. Recovery must
    // truncate the torn tail, count it, and still resume bit-identically
    // (the stream covers what the torn group lost).
    let (stream, spec) = tiny_url();
    let baseline = run_deployment(&stream, &spec, &continuous_cfg());

    let dir = test_dir("torn");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(2).keep(2));
    // Large batch, no window: every append stays buffered until the crash.
    cfg.wal = Some(
        WalConfig::new(dir.join("wal"))
            .fsync_every(64)
            .group_window(0.0),
    );
    cfg.faults = crash_plan(CrashSite::WalAppend, 4);
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(CrashSite::WalAppend)) => {}
        other => panic!("expected a wal-append crash, got {other:?}"),
    }

    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert!(
        resumed.wal_stats.torn >= 1,
        "the torn tail must be truncated and counted: {:?}",
        resumed.wal_stats
    );
    assert_identical("torn final record", &baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_rotation_leaves_orphan_tmp_and_resume_matches() {
    let (stream, spec) = tiny_url();
    let baseline = run_deployment(&stream, &spec, &continuous_cfg());

    let dir = test_dir("rotation");
    let wal_dir = dir.join("wal");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(2).keep(2));
    cfg.wal = Some(WalConfig::new(&wal_dir).fsync_every(1));
    cfg.faults = crash_plan(CrashSite::WalRotate, 5);
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(CrashSite::WalRotate)) => {}
        other => panic!("expected a wal-rotate crash, got {other:?}"),
    }
    let orphans = std::fs::read_dir(&wal_dir)
        .expect("wal dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .count();
    assert_eq!(orphans, 1, "a mid-rotation kill leaves one orphaned .tmp");

    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert_identical("crash mid-rotation", &baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_segments_rotate_and_replay_across_many_segments() {
    // A 1 KiB segment budget forces a rotation nearly every commit: the
    // crashed run leaves a multi-segment WAL whose numeric (not
    // lexicographic-accident) ordering recovery must respect.
    let (stream, spec) = tiny_url();
    let baseline = run_deployment(&stream, &spec, &continuous_cfg());

    let dir = test_dir("segments");
    let wal_dir = dir.join("wal");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(4).keep(2));
    cfg.wal = Some(WalConfig::new(&wal_dir).fsync_every(1).segment_bytes(1024));
    cfg.faults = crash_plan(CrashSite::ChunkBoundary, 6);
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(CrashSite::ChunkBoundary)) => {}
        other => panic!("expected a chunk-boundary crash, got {other:?}"),
    }
    assert!(
        segment_count(&wal_dir) > 1,
        "a 1 KiB budget must have rotated at least once"
    );

    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert!(resumed.wal_stats.replayed > 0);
    assert_identical("multi-segment replay", &baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_garbage_collect_covered_segments() {
    // A clean run with tiny segments and frequent checkpoints must retire
    // covered segments as it goes — the WAL directory stays bounded instead
    // of accumulating the whole stream.
    let (stream, spec) = tiny_url();
    let dir = test_dir("gc");
    let wal_dir = dir.join("wal");
    let mut cfg = continuous_cfg();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(2).keep(2));
    cfg.wal = Some(WalConfig::new(&wal_dir).fsync_every(1).segment_bytes(1024));
    let result = run_deployment(&stream, &spec, &cfg);
    assert!(result.wal_stats.rotations > 0, "{:?}", result.wal_stats);
    assert!(result.wal_stats.segments_gced > 0, "{:?}", result.wal_stats);
    assert!(
        segment_count(&wal_dir) <= 2,
        "covered segments must be retired, found {}",
        segment_count(&wal_dir)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_does_not_perturb_a_clean_run() {
    // The acceptance bar for `wal: None` compatibility, from the other
    // side: enabling the WAL must not change any deterministic surface of
    // an uninterrupted run.
    let (stream, spec) = tiny_url();
    let plain = run_deployment(&stream, &spec, &continuous_cfg());
    let dir = test_dir("perturb");
    let mut cfg = continuous_cfg();
    cfg.wal = Some(WalConfig::new(dir.join("wal")));
    let walled = run_deployment(&stream, &spec, &cfg);
    assert!(walled.wal_stats.appends > 0);
    assert!(walled.wal_stats.commits > 0);
    assert_identical("WAL perturbation", &plain, &walled);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The three acceptance scenarios, each run end-to-end on the simulated
/// clock with WAL + checkpoints, killed between checkpoints, and resumed
/// bit-identically against its own uninterrupted baseline.
#[test]
fn scenarios_survive_kill_and_resume_with_wal() {
    let (url, spec) = tiny_url();
    let scenarios: [(&str, Box<dyn ChunkStream>); 3] = [
        ("sudden-drift", Box::new(SuddenDrift::new(url.clone(), 12))),
        (
            "bursty-arrivals",
            Box::new(BurstyArrivals::new(url.clone(), 41, 4, 0.3)),
        ),
        (
            "out-of-order",
            Box::new(OutOfOrderArrivals::new(url, 41, 4)),
        ),
    ];
    for (name, stream) in &scenarios {
        // Deterministic under the virtual clock: same stream, same result.
        let baseline = run_deployment(stream.as_ref(), &spec, &continuous_cfg());
        let again = run_deployment(stream.as_ref(), &spec, &continuous_cfg());
        assert_identical(&format!("{name} determinism"), &baseline, &again);

        let dir = test_dir(name);
        let mut cfg = continuous_cfg();
        cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(3).keep(2));
        cfg.wal = Some(WalConfig::new(dir.join("wal")).fsync_every(1));
        cfg.faults = crash_plan(CrashSite::ChunkBoundary, 7);
        match try_run_deployment(stream.as_ref(), &spec, &cfg) {
            Err(DeploymentError::Crashed(CrashSite::ChunkBoundary)) => {}
            other => panic!("{name}: expected a chunk-boundary crash, got {other:?}"),
        }
        let resumed = try_resume_deployment(stream.as_ref(), &spec, &cfg).expect("resume");
        assert_identical(&format!("{name} kill+resume"), &baseline, &resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The CI wal-chaos matrix entry point: seed, fsync batch, and crash site
/// come from the environment (`CDP_FAULT_SEED`, `CDP_WAL_FSYNC`,
/// `CDP_WAL_CRASH_SITE`); WAL segments land under `target/ci-wal/` so the
/// workflow can upload them as artifacts when the assertion fails.
#[test]
fn ci_matrix_wal_chaos_smoke() {
    let seed: u64 = std::env::var("CDP_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let fsync: usize = std::env::var("CDP_WAL_FSYNC")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let site = std::env::var("CDP_WAL_CRASH_SITE")
        .ok()
        .and_then(|v| CrashSite::parse(&v))
        .unwrap_or(CrashSite::WalAppend);
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("ci-wal")
        .join(format!("seed-{seed}-fsync-{fsync}-{}", site.name()));
    let _ = std::fs::remove_dir_all(&dir);

    let (stream, spec) = tiny_url();
    // Low-rate WAL faults on top of the kill: retries and degraded-to-lost
    // records must not break the bit-identity contract.
    let faults = FaultPlan {
        seed,
        wal_append_error: 0.05,
        wal_fsync_error: 0.05,
        ..FaultPlan::none()
    };
    let mut baseline_cfg = continuous_cfg();
    baseline_cfg.faults = faults;
    let baseline = run_deployment(&stream, &spec, &baseline_cfg);

    let mut cfg = baseline_cfg.clone();
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(3).keep(2));
    cfg.wal = Some(WalConfig::new(dir.join("wal")).fsync_every(fsync));
    cfg.faults = FaultPlan {
        crash_site: Some(site),
        crash_at: 6,
        ..faults
    };
    match try_run_deployment(&stream, &spec, &cfg) {
        Err(DeploymentError::Crashed(s)) if s == site => {}
        other => panic!("expected a {} crash, got {other:?}", site.name()),
    }
    let resumed = try_resume_deployment(&stream, &spec, &cfg).expect("resume");
    assert_eq!(resumed.checkpoint_stats.restores, 1);
    assert_identical("ci wal-chaos smoke", &baseline, &resumed);
    // Leave the WAL directory in place for artifact upload.
}
