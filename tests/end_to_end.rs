//! End-to-end integration tests spanning all crates: the paper's headline
//! claims at test scale.

use cdpipe::core::presets::url_spec_from;
use cdpipe::datagen::url::UrlConfig;
use cdpipe::engine::ExecutionEngine;
use cdpipe::prelude::*;

/// A mid-size URL run used by several tests (larger than `Tiny`, much
/// smaller than `Repo`).
fn small_url() -> (cdpipe::datagen::url::UrlGenerator, DeploymentSpec) {
    let config = UrlConfig {
        days: 12,
        chunks_per_day: 4,
        rows_per_chunk: 30,
        base_vocab: 1_000,
        vocab_growth_per_day: 40,
        tokens_per_row: 10,
        lexical_features: 8,
        drift_per_day: 0.05,
        ..UrlConfig::repo_scale()
    };
    url_spec_from(config, 10, SpecScale::Tiny)
}

#[test]
fn headline_continuous_cheaper_than_periodical_same_quality() {
    let (stream, spec) = small_url();
    let continuous = run_deployment(
        &stream,
        &spec,
        &DeploymentConfig::continuous(3, 4, SamplingStrategy::TimeBased),
    );
    let periodical = run_deployment(&stream, &spec, &DeploymentConfig::periodical(8));
    let online = run_deployment(&stream, &spec, &DeploymentConfig::online());

    // The paper's Figure 4 shape: cost(periodical) ≫ cost(continuous) ≳
    // cost(online).
    assert!(
        periodical.total_secs / continuous.total_secs > 2.0,
        "periodical {:.4}s vs continuous {:.4}s",
        periodical.total_secs,
        continuous.total_secs
    );
    assert!(continuous.total_secs >= online.total_secs);

    // Quality: continuous must be comparable to periodical (within 2% abs)
    // and at least as good as online.
    assert!(
        continuous.final_error <= periodical.final_error + 0.02,
        "continuous {:.4} vs periodical {:.4}",
        continuous.final_error,
        periodical.final_error
    );
    assert!(
        continuous.final_error <= online.final_error + 1e-9,
        "continuous {:.4} vs online {:.4}",
        continuous.final_error,
        online.final_error
    );
}

#[test]
fn proactive_training_is_subsecond() {
    // Paper §5.5: average proactive-training time is ~200 ms (URL) — the
    // platform never blocks queries for long. Accounted time per instance
    // at this scale must stay well below one simulated second.
    let (stream, spec) = small_url();
    let result = run_deployment(
        &stream,
        &spec,
        &DeploymentConfig::continuous(3, 4, SamplingStrategy::TimeBased),
    );
    assert!(result.proactive_runs >= 10);
    assert!(
        result.avg_proactive_secs < 1.0,
        "avg proactive {:.4}s",
        result.avg_proactive_secs
    );
}

#[test]
fn materialization_budget_trades_cost_for_memory() {
    let (stream, spec) = small_url();
    let base = DeploymentConfig::continuous(2, 6, SamplingStrategy::Uniform);

    let mut zero = base.clone();
    zero.optimization.budget = StorageBudget::MaxChunks(0);
    let rate_0 = run_deployment(&stream, &spec, &zero);

    let mut partial = base.clone();
    partial.optimization.budget = StorageBudget::MaxChunks(stream.total_chunks() / 5);
    let rate_02 = run_deployment(&stream, &spec, &partial);

    let full = run_deployment(&stream, &spec, &base);

    // Figure 7 shape: cost decreases monotonically with materialization.
    assert!(rate_0.total_secs > rate_02.total_secs);
    assert!(rate_02.total_secs > full.total_secs);
    // μ follows: 0 at rate 0, 1 at rate 1, in between otherwise.
    assert_eq!(rate_0.empirical_mu, 0.0);
    assert!(rate_02.empirical_mu > 0.0 && rate_02.empirical_mu < 1.0);
    assert!(full.empirical_mu > 0.999);
    // Quality is essentially unaffected by materialization: it is a cost
    // optimization. (Not bit-identical — a re-materialized chunk is
    // transformed with the *current* component statistics, while a cached
    // feature chunk froze the statistics of its storage time. The paper's
    // Spark-cache prototype has the same property.)
    assert!(
        (rate_0.final_error - full.final_error).abs() < 0.03,
        "rate-0 error {:.4} vs fully-materialized error {:.4}",
        rate_0.final_error,
        full.final_error
    );
}

#[test]
fn online_statistics_computation_saves_cost_not_quality() {
    let (stream, spec) = small_url();
    let base = DeploymentConfig::continuous(2, 6, SamplingStrategy::TimeBased);
    let with_opt = run_deployment(&stream, &spec, &base);
    let mut no_opt = base;
    no_opt.optimization.online_stats = false;
    no_opt.optimization.budget = StorageBudget::MaxChunks(0);
    let without = run_deployment(&stream, &spec, &no_opt);
    assert!(without.total_secs > with_opt.total_secs * 1.3);
    assert!((without.final_error - with_opt.final_error).abs() < 0.02);
}

#[test]
fn taxi_pipeline_full_deployment() {
    let (stream, spec) = taxi_spec(SpecScale::Tiny);
    let continuous = run_deployment(
        &stream,
        &spec,
        &DeploymentConfig::continuous(2, 3, SamplingStrategy::Uniform),
    );
    let online = run_deployment(&stream, &spec, &DeploymentConfig::online());
    // Regression quality: both beat the constant-zero predictor (RMSLE ≈
    // 6.5) by a wide margin; continuous is at least as good as online.
    assert!(continuous.final_error < 1.0);
    assert!(online.final_error < 1.5);
    assert!(continuous.final_error <= online.final_error + 0.05);
}

#[test]
fn dynamic_scheduler_runs_and_respects_slack() {
    let (stream, spec) = small_url();
    let mode = |slack| DeploymentMode::Continuous {
        scheduler: Scheduler::Dynamic { slack },
        sample_chunks: 4,
        strategy: SamplingStrategy::TimeBased,
    };
    let mut tight = DeploymentConfig::online();
    tight.mode = mode(1.0);
    let mut loose = DeploymentConfig::online();
    loose.mode = mode(1000.0);
    // Make intervals meaningful relative to the chunk period.
    tight.chunk_period_secs = 1e-4;
    loose.chunk_period_secs = 1e-4;

    let tight_result = run_deployment(&stream, &spec, &tight);
    let loose_result = run_deployment(&stream, &spec, &loose);
    assert!(tight_result.proactive_runs >= loose_result.proactive_runs);
    assert!(tight_result.proactive_runs > 0);
}

/// The fault plan the sweep tests run under: the CI fault matrix sets
/// `CDP_FAULT_SEED` (two fixed seeds); local runs default to a fixed chaos
/// seed so the tests are never fault-free.
fn sweep_plan() -> FaultPlan {
    FaultPlan::from_env().unwrap_or_else(|| FaultPlan::chaos(7))
}

/// A continuous deployment that exercises every fault site: a bounded cache
/// forces evictions (engine re-materialization) and the disk spill tier
/// gives injected I/O faults a real surface.
fn faulted_continuous() -> DeploymentConfig {
    let mut config = DeploymentConfig::continuous(2, 4, SamplingStrategy::Uniform);
    config.optimization.budget = StorageBudget::MaxChunks(5);
    config.spill_to_disk = true;
    config.faults = sweep_plan();
    config
}

#[test]
fn fault_sweep_no_mode_panics() {
    // Mode (a): all three deployment modes complete under the fault plan —
    // faults become typed errors or recovered events, never process panics.
    let (stream, spec) = small_url();
    let mut online = DeploymentConfig::online();
    online.faults = sweep_plan();
    let mut periodical = DeploymentConfig::periodical(8);
    periodical.faults = sweep_plan();
    for config in [online, periodical, faulted_continuous()] {
        let result = try_run_deployment(&stream, &spec, &config);
        assert!(
            result.is_ok(),
            "{} under seed {} must recover: {:?}",
            config.mode.name(),
            config.faults.seed,
            result.err()
        );
    }
}

#[test]
fn fault_sweep_is_deterministic_across_reruns() {
    // Mode (b): the same fault seed produces a bit-identical deployment —
    // same weights, same error curve, same injected-fault accounting.
    let (stream, spec) = small_url();
    let config = faulted_continuous();
    let a = try_run_deployment(&stream, &spec, &config).expect("recoverable plan");
    let b = try_run_deployment(&stream, &spec, &config).expect("recoverable plan");
    assert_eq!(a.final_weights, b.final_weights);
    assert_eq!(a.error_curve, b.error_curve);
    assert_eq!(a.final_error.to_bits(), b.final_error.to_bits());
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.tiered_stats, b.tiered_stats);
}

#[test]
fn fault_sweep_injects_and_recovers() {
    // Mode (c): the plan actually fires, and the platform visibly recovers.
    let (stream, spec) = small_url();
    let result =
        try_run_deployment(&stream, &spec, &faulted_continuous()).expect("recoverable plan");
    let stats = result.fault_stats;
    assert!(
        stats.injected_total() > 0,
        "plan must inject faults: {stats}"
    );
    assert!(stats.recovered > 0, "recovery must be observable: {stats}");
    assert!(
        stats.retries > 0,
        "disk faults must trigger retries: {stats}"
    );
    assert_eq!(stats.fatal, 0, "plan must stay within budgets: {stats}");
}

#[test]
fn recoverable_only_faults_match_fault_free_model() {
    // Worker panics and latency are recovered by restarting the worker
    // before it consumes any input, so a plan containing only those faults
    // must converge to the exact fault-free model. (Disk faults are excluded
    // here: losing a spilled chunk falls back to re-materialization with
    // *current* pipeline statistics, which is a recovery, not a replay.)
    let (stream, spec) = small_url();
    let mut base = DeploymentConfig::continuous(2, 4, SamplingStrategy::Uniform);
    base.optimization.budget = StorageBudget::MaxChunks(5);
    let clean = run_deployment(&stream, &spec, &base);

    // A panic streak longer than the restart budget is fatal by design, so
    // scan a few seeds (deterministically, starting from the sweep seed)
    // for one whose streaks all stay within budget while still injecting.
    let mut faulted = None;
    for offset in 0..16u64 {
        let mut faulted_cfg = base.clone();
        faulted_cfg.faults = FaultPlan {
            seed: sweep_plan().seed.wrapping_add(offset),
            worker_panic: 0.4,
            slow_chunk_ms: 1,
            ..FaultPlan::none()
        };
        if let Ok(result) = try_run_deployment(&stream, &spec, &faulted_cfg) {
            if result.fault_stats.injected_worker_panics > 0 {
                faulted = Some(result);
                break;
            }
        }
    }
    let faulted = faulted.expect("a nearby seed stays within the restart budget");

    assert!(faulted.fault_stats.injected_worker_panics > 0);
    assert_eq!(faulted.fault_stats.fatal, 0);
    assert_eq!(faulted.fault_stats.fallback_rematerializations, 0);
    assert_eq!(clean.final_weights, faulted.final_weights);
    assert_eq!(clean.final_error.to_bits(), faulted.final_error.to_bits());
    assert_eq!(clean.error_curve, faulted.error_curve);
}

#[test]
fn metrics_snapshot_spans_all_subsystems() {
    // A continuous run with a bounded cache exercises every instrumented
    // layer: engine (re-materialization maps), storage (hits/spills/
    // recomputes), scheduler (fire decisions), trainer (proactive runs).
    let (stream, spec) = small_url();
    let mut config = DeploymentConfig::continuous(2, 6, SamplingStrategy::Uniform);
    config.optimization.budget = StorageBudget::MaxChunks(5);
    config.collect_metrics = true;
    let result = run_deployment(&stream, &spec, &config);
    let snap = &result.metrics;

    assert!(
        snap.metric_count() >= 12,
        "snapshot must span the platform: {} metrics",
        snap.metric_count()
    );
    let deployment_chunks = (stream.total_chunks() - stream.initial_chunks()) as u64;
    // Deployment driver.
    assert_eq!(snap.counter("deployment.chunks"), deployment_chunks);
    assert_eq!(snap.counter("deployment.queries"), result.queries_answered);
    // Engine: the bounded cache forces engine-parallel re-materialization.
    assert!(snap.counter("engine.map_calls") > 0);
    assert!(snap.counter("engine.tasks") > 0);
    assert!(snap.histogram("engine.map_secs").is_some());
    // Storage mirrors the tier counters exactly.
    assert_eq!(
        snap.counter("store.memory_hits"),
        result.tiered_stats.memory_hits
    );
    assert_eq!(
        snap.counter("store.recomputes"),
        result.tiered_stats.recomputes
    );
    assert!(snap.counter("store.recomputes") > 0, "budget 5 must evict");
    // Scheduler: one decision per chunk.
    assert_eq!(
        snap.counter("scheduler.fires") + snap.counter("scheduler.skips"),
        deployment_chunks
    );
    assert_eq!(snap.counter("scheduler.fires"), result.proactive_runs);
    // Trainer.
    assert_eq!(snap.counter("proactive.runs"), result.proactive_runs);
    assert!(snap
        .histogram("proactive.accounted_secs")
        .is_some_and(|h| h.count == result.proactive_runs));
    // μ: observed matches the result, alongside the Eq. 4 prediction.
    assert_eq!(snap.gauge("pm.mu_observed"), result.empirical_mu);
    let predicted = snap.gauge("pm.mu_uniform");
    assert!(predicted > 0.0 && predicted < 1.0);

    // Metrics never feed back into results: identical run without them.
    let mut silent = config;
    silent.collect_metrics = false;
    let baseline = run_deployment(&stream, &spec, &silent);
    assert!(baseline.metrics.is_empty());
    assert_eq!(baseline.final_weights, result.final_weights);
    assert_eq!(baseline.error_curve, result.error_curve);
    assert_eq!(baseline.total_secs.to_bits(), result.total_secs.to_bits());
}

#[test]
fn threaded_run_reconciles_engine_metrics() {
    // Work-stealing observables are histograms — steal counts and queue
    // depths are scheduling noise, never part of the deterministic surface —
    // but their *sample counts* are exact: every threaded map observes the
    // pair exactly once (empty maps observe zeros), so both reconcile with
    // `engine.map_calls`. Scratch-pool traffic reconciles the same way:
    // reuse + alloc samples are drained once per proactive/retrain charge.
    // The attached serving front reconciles too: its `serving.*` counters
    // (kept in the server's own registry) mirror the server's atomics
    // exactly, and every publish the run performed is visible both as a
    // version bump and as a `serving.publish` event in the run's log.
    let (stream, spec) = small_url();
    let mut config = DeploymentConfig::continuous(2, 6, SamplingStrategy::Uniform);
    config.optimization.budget = StorageBudget::MaxChunks(5);
    config.engine = ExecutionEngine::Threaded { workers: 4 };
    config.collect_metrics = true;
    let serving_metrics = cdpipe::obs::Metrics::collecting();
    let server = cdpipe::core::serving::ModelServer::builder(
        spec.build_pipeline(),
        cdpipe::ml::LinearModel::zeros(1, spec.sgd.loss),
    )
    .metrics(serving_metrics.clone())
    .build();
    config.serving = Some(server.clone());
    let result = run_deployment(&stream, &spec, &config);
    let snap = &result.metrics;

    // Serve real traffic from the stream through the published model, then
    // reconcile the serving ledger: counter mirrors are exact, and
    // `attempts == served + rejected + batch_failures` holds to the query.
    for record in &stream.chunk(0).records {
        let p = server.predict(record).expect("url record is well-formed");
        assert_eq!(p.version, server.version());
    }
    let serving_snap = serving_metrics.snapshot();
    assert_eq!(
        serving_snap.counter("serving.served"),
        server.queries_served()
    );
    assert_eq!(
        serving_snap.counter("serving.rejected"),
        server.queries_rejected()
    );
    assert_eq!(
        server.attempts(),
        server.queries_served() + server.queries_rejected() + server.batch_failures()
    );
    // Every publish is ledgered twice: counter in the serving registry,
    // event in the deployment log; both reconcile with the version number.
    let publishes = server.version() - 1;
    assert_eq!(serving_snap.counter("serving.publishes"), publishes);
    let publish_events = snap
        .events
        .iter()
        .filter(|e| e.name == "serving.publish")
        .count() as u64;
    assert_eq!(publish_events, publishes);

    let map_calls = snap.counter("engine.map_calls");
    assert!(map_calls > 0, "bounded cache must dispatch engine maps");
    let depth = snap
        .histogram("engine.queue_depth")
        .expect("threaded maps record their unit count");
    let steal = snap
        .histogram("engine.steal")
        .expect("threaded maps record their steal count");
    assert_eq!(depth.count, map_calls, "one queue-depth sample per map");
    assert_eq!(steal.count, map_calls, "one steal sample per map");
    // Units scheduled across all maps equals the task counter.
    assert_eq!(depth.sum as u64, snap.counter("engine.tasks"));

    // The gradient-scratch pool allocates on first use and reuses after:
    // both sides of the pool ledger surface as histogram samples.
    let alloc = snap
        .histogram("engine.scratch_alloc")
        .expect("cold pool must allocate");
    assert!(alloc.sum > 0.0);
    let reuse = snap
        .histogram("engine.scratch_reuse")
        .expect("warm pool must reuse");
    assert!(reuse.sum > 0.0);

    // The threaded, metrics-on, serving-attached run stays bit-identical to
    // the silent sequential baseline: stealing, scratch pooling, and
    // publishing are observers.
    let mut silent = config;
    silent.engine = ExecutionEngine::Sequential;
    silent.collect_metrics = false;
    silent.serving = None;
    let baseline = run_deployment(&stream, &spec, &silent);
    assert_eq!(baseline.final_weights, result.final_weights);
    assert_eq!(baseline.error_curve, result.error_curve);
    assert_eq!(baseline.total_secs.to_bits(), result.total_secs.to_bits());
}

#[test]
fn dynamic_scheduler_cadence_matches_eq6_under_virtual_clock() {
    // The deployment clock is virtual (it advances by exactly one chunk
    // period per chunk), so Eq. 6 cadence is exactly checkable end to end.
    let (stream, spec) = small_url();
    let deployment_chunks = (stream.total_chunks() - stream.initial_chunks()) as u64;

    // Degenerate cadence: a huge chunk period dwarfs any T·pr·pl interval,
    // so dynamic scheduling fires every chunk (the documented Static{1}
    // degeneration).
    let mut every_chunk = DeploymentConfig::online();
    every_chunk.mode = DeploymentMode::Continuous {
        scheduler: Scheduler::Dynamic { slack: 2.0 },
        sample_chunks: 4,
        strategy: SamplingStrategy::TimeBased,
    };
    every_chunk.chunk_period_secs = 1e6;
    every_chunk.collect_metrics = true;
    let result = run_deployment(&stream, &spec, &every_chunk);
    assert_eq!(result.proactive_runs, deployment_chunks);

    // A meaningful period: trainings must still never fire before the
    // Eq. 6 interval has elapsed — the fire margin (elapsed − T·S·pr·pl at
    // fire time) is non-negative on every firing.
    let mut tight = every_chunk;
    tight.chunk_period_secs = 1e-4;
    tight.mode = DeploymentMode::Continuous {
        scheduler: Scheduler::Dynamic { slack: 1000.0 },
        sample_chunks: 4,
        strategy: SamplingStrategy::TimeBased,
    };
    let tight_result = run_deployment(&stream, &spec, &tight);
    let margin = tight_result
        .metrics
        .histogram("scheduler.fire_margin_secs")
        .expect("dynamic fires record their margin");
    assert_eq!(margin.count, tight_result.proactive_runs);
    assert!(
        margin.min >= 0.0,
        "a training fired before its Eq. 6 interval: min margin {}",
        margin.min
    );
    assert!(
        tight_result.proactive_runs < deployment_chunks,
        "slack 1000 at a 100 µs period must skip some chunks"
    );
}

#[test]
fn fault_injected_run_exposes_recovery_through_metrics() {
    // The observability layer must agree with the fault injector's own
    // accounting: every recovery (worker restart, disk retry, lookup
    // fallback) surfaces in the snapshot.
    let (stream, spec) = small_url();
    let mut config = faulted_continuous();
    config.collect_metrics = true;
    let result = try_run_deployment(&stream, &spec, &config).expect("recoverable plan");
    let snap = &result.metrics;

    assert_eq!(result.fault_stats.fatal, 0);
    assert_eq!(
        snap.counter("engine.worker_restarts") + snap.counter("store.disk_retries"),
        result.fault_stats.retries,
        "metrics retries must match fault accounting: {}",
        result.fault_stats
    );
    assert_eq!(
        snap.counter("store.read_fallbacks"),
        result.tiered_stats.read_fallbacks
    );
    assert_eq!(
        snap.counter("store.lost_spills"),
        result.tiered_stats.lost_spills
    );
    assert_eq!(snap.counter("store.spills"), result.tiered_stats.spills);
    assert!(
        snap.counter("store.disk_retries") > 0,
        "disk faults must retry"
    );
}

#[test]
fn deployment_results_serialize() {
    // Results feed the experiment harness; they must round-trip through
    // serde for CSV/JSON artifact generation.
    let (stream, spec) = taxi_spec(SpecScale::Tiny);
    let result = run_deployment(&stream, &spec, &DeploymentConfig::online());
    let debug = format!("{result:?}");
    assert!(debug.contains("Online"));
    assert!(result.error_curve.len() == result.cost_curve.len());
}
