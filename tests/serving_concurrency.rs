//! Concurrency battery for the sharded lock-free serving layer.
//!
//! The claims under test are exactly the ones DESIGN.md §14 argues on
//! paper: readers never observe a torn `(pipeline, model, version)` triple
//! under publish fire, per-reader version observations are monotone,
//! micro-batched scoring is bit-identical to unbatched scoring, the
//! accounting invariant (`attempts == served + rejected + batch_failures`)
//! reconciles exactly with the `serving.*` cdp-obs counters, and all of it
//! holds under seeded worker-panic injection (the CI fault matrix sets
//! `CDP_FAULT_SEED`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cdpipe::core::serving::{BatchConfig, ModelServer, RouterConfig, ServingRouter, Ticket};
use cdpipe::engine::ExecutionEngine;
use cdpipe::faults::{FaultInjector, FaultPlan};
use cdpipe::ml::{LinearModel, LossKind};
use cdpipe::obs::{Metrics, VirtualClock};
use cdpipe::pipeline::encode::DenseEncoder;
use cdpipe::pipeline::parser::SchemaParser;
use cdpipe::pipeline::scale::StandardScaler;
use cdpipe::pipeline::{Pipeline, PipelineBuilder};
use cdpipe::storage::{RawChunk, Record, Schema, Timestamp, Value};
use proptest::prelude::*;

/// A warmed pipeline over schema `(y, x1, x2)` using the first `features`
/// numeric columns — `features` controls the encoded dimension, so
/// alternating publishes between `narrow_pipeline()` and `wide_pipeline()`
/// exercises dimension changes across versions.
fn warmed(features: usize) -> Pipeline {
    let schema = Schema::new(["y", "x1", "x2"]);
    let nums: Vec<&str> = ["x1", "x2"][..features].to_vec();
    let built = PipelineBuilder::new(SchemaParser::new(schema, "y", &nums, None))
        .add(StandardScaler::new())
        .encoder(DenseEncoder::new(features));
    let mut p = match built {
        Ok(p) => p,
        Err(e) => panic!("components are incremental: {e}"),
    };
    let records = (0..8)
        .map(|i| {
            Record::new(vec![
                Value::Num(i as f64),
                Value::Num(i as f64 * 0.5),
                Value::Num(3.0 - i as f64),
            ])
        })
        .collect();
    p.fit_transform_chunk(&RawChunk::new(Timestamp(0), records));
    p
}

fn record(x1: f64, x2: f64) -> Record {
    Record::new(vec![Value::Num(0.0), Value::Num(x1), Value::Num(x2)])
}

/// A model of dimension `dim` whose every weight is `seed_weight` — each
/// published version gets a distinct, precomputable scoring function.
fn constant_model(dim: usize, seed_weight: f64) -> LinearModel {
    let mut m = LinearModel::zeros(dim, LossKind::Squared);
    for i in 0..dim {
        m.weights_mut().set(i, seed_weight).expect("within dim");
    }
    m
}

/// Satellite 1: N reader threads hammer `predict` while a writer publishes
/// every few milliseconds. Every prediction's value must equal the value
/// its *version's* coherent `(pipeline, model)` pair produces — versions
/// alternate between 2- and 3-dimensional pipelines with distinct constant
/// weights, so any torn pair (new pipeline with old model, or vice versa)
/// yields a value that no version's table entry matches. Versions must be
/// monotone per reader, and total served must reconcile with the counters.
#[test]
fn readers_never_observe_torn_snapshots_under_publish_fire() {
    const PUBLISHES: usize = 30;
    const READERS: usize = 4;

    // Pre-build every version's pair and its expected values on the probes.
    let probes = [record(1.5, -2.0), record(-0.25, 4.0), record(7.0, 0.5)];
    let mut pairs: Vec<(Pipeline, LinearModel)> = Vec::new();
    for v in 1..=(PUBLISHES + 1) {
        let features = if v % 2 == 0 { 2 } else { 1 };
        let pipeline = warmed(features);
        let model = constant_model(pipeline.dim(), v as f64);
        pairs.push((pipeline, model));
    }
    let expected: Vec<Vec<f64>> = pairs
        .iter()
        .map(|(p, m)| {
            let probe_server = ModelServer::new(p.clone(), m.clone());
            probes
                .iter()
                .map(|r| probe_server.predict(r).expect("valid probe").value)
                .collect()
        })
        .collect();

    let (p0, m0) = pairs[0].clone();
    let server = ModelServer::new(p0, m0);
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let s = server.clone();
            let done = Arc::clone(&done);
            let probes = probes.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut last_version = 0u64;
                let mut served = 0u64;
                let mut i = r; // stagger probe choice across readers
                while !done.load(Ordering::Relaxed) || i < r + 50 {
                    let probe = i % probes.len();
                    let p = s.predict(&probes[probe]).expect("valid probe");
                    // Coherence: the value must be exactly what this
                    // version's (pipeline, model) pair produces.
                    let want = expected[(p.version - 1) as usize][probe];
                    assert_eq!(
                        p.value.to_bits(),
                        want.to_bits(),
                        "version {} served a torn snapshot",
                        p.version
                    );
                    // Monotonicity: versions never move backward per reader.
                    assert!(p.version >= last_version, "version went backward");
                    last_version = p.version;
                    served += 1;
                    i += 1;
                }
                served
            })
        })
        .collect();

    for (pipeline, model) in pairs.into_iter().skip(1) {
        std::thread::sleep(Duration::from_millis(2));
        server.publish(pipeline, model);
    }
    done.store(true, Ordering::Relaxed);

    let reader_total: u64 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert_eq!(server.version(), (PUBLISHES + 1) as u64);
    assert_eq!(server.queries_served(), reader_total);
    assert_eq!(server.queries_rejected(), 0);
    assert_eq!(server.attempts(), reader_total);
}

/// Satellite 1 (third assertion): total served across a router equals the
/// sum of per-route counters, both on the server handles and in the shared
/// metrics registry.
#[test]
fn router_totals_reconcile_with_per_route_counters() {
    let metrics = Metrics::collecting();
    let router = ServingRouter::with_config(
        ExecutionEngine::Sequential,
        RouterConfig {
            metrics: metrics.clone(),
            ..RouterConfig::default()
        },
    );
    let routes = ["alpha", "beta", "gamma"];
    let handles: Vec<_> = routes
        .iter()
        .map(|name| {
            let pipeline = warmed(2);
            let model = constant_model(pipeline.dim(), 1.0);
            router.register(name, pipeline, model)
        })
        .collect();

    let workers: Vec<_> = handles
        .iter()
        .enumerate()
        .map(|(i, server)| {
            let s = server.clone();
            let n = 100 + 50 * i as u64;
            std::thread::spawn(move || {
                for q in 0..n {
                    let _ = s.predict(&record(q as f64, -(q as f64)));
                }
                // One malformed query per route: rejected, not served.
                let _ = s.predict(&Record::new(vec![Value::Text("bad".into())]));
            })
        })
        .collect();
    for w in workers {
        w.join().expect("route worker");
    }

    let per_route: u64 = handles.iter().map(ModelServer::queries_served).sum();
    assert_eq!(router.total_served(), per_route);
    assert_eq!(router.total_served(), 100 + 150 + 200);
    assert_eq!(router.total_rejected(), routes.len() as u64);

    let snap = metrics.snapshot();
    let counter_sum: u64 = routes
        .iter()
        .map(|r| snap.counter(&format!("serving.{r}.served")))
        .sum();
    assert_eq!(snap.counter("serving.served"), counter_sum);
    assert_eq!(snap.counter("serving.served"), router.total_served());
    assert_eq!(snap.counter("serving.rejected"), router.total_rejected());
}

proptest! {
    /// Satellite 2: micro-batched scoring is bit-identical to unbatched
    /// `predict` for the same snapshot version, across batch sizes ×
    /// deadline settings × worker counts {1..8}. Records include malformed
    /// rows, which must reject identically on both paths.
    #[test]
    fn batched_scoring_is_bit_identical_to_unbatched(
        max_batch in 1usize..40,
        delay_ms in 0u64..10,
        workers in 1usize..8,
        n in 1usize..30,
    ) {
        let clock = Arc::new(VirtualClock::new());
        let pipeline = warmed(2);
        let model = constant_model(pipeline.dim(), 0.75);
        let server = ModelServer::builder(pipeline, model)
            .engine(ExecutionEngine::Threaded { workers })
            .clock(clock.clone())
            .batching(BatchConfig {
                max_batch,
                max_delay_secs: delay_ms as f64 / 1000.0,
                capacity: 4096,
            })
            .build();

        let records: Vec<Record> = (0..n)
            .map(|i| {
                if i % 7 == 3 {
                    // Malformed row: rejected on both paths.
                    Record::new(vec![Value::Text("bad".into())])
                } else {
                    record(i as f64 * 0.31 - 2.0, 1.0 - i as f64)
                }
            })
            .collect();

        let unbatched: Vec<_> = records.iter().map(|r| server.predict(r)).collect();

        let tickets: Vec<Ticket> = records
            .iter()
            .map(|r| server.enqueue(r.clone()).expect("capacity 4096"))
            .collect();
        // Pass the deadline, then flush what the size trigger left behind.
        clock.advance_secs(delay_ms as f64 / 1000.0 + 0.001);
        server.flush_due();
        server.flush_all();
        prop_assert_eq!(server.pending(), 0);

        for (u, t) in unbatched.iter().zip(&tickets) {
            let b = t.wait();
            match (u, b) {
                (Some(a), Some(c)) => {
                    prop_assert_eq!(a.value.to_bits(), c.value.to_bits());
                    prop_assert_eq!(a.version, c.version);
                }
                (None, None) => {}
                (a, c) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, c),
            }
        }
        // Both passes are fully accounted.
        prop_assert_eq!(server.attempts(), 2 * n as u64);
        prop_assert_eq!(
            server.attempts(),
            server.queries_served() + server.queries_rejected() + server.batch_failures()
        );
    }
}

/// The fault plan for the battery: the CI fault matrix sets
/// `CDP_FAULT_SEED`; local runs default to a fixed chaos seed so the test
/// is never fault-free.
fn sweep_plan() -> FaultPlan {
    FaultPlan::from_env().unwrap_or_else(|| FaultPlan::chaos(7))
}

/// Satellite 6: the battery under seeded worker-panic fire. Batch scoring
/// runs on a threaded engine whose fault hook injects worker panics;
/// recoverable panics must be absorbed (results identical to fault-free),
/// fatal ones must surface as fulfilled-`None` tickets counted in
/// `batch_failures` — and the whole ledger must stay exact and
/// deterministic across reruns of the same seed.
#[test]
fn serving_battery_under_seeded_worker_panics() {
    let plan = sweep_plan();

    let drive = |plan: FaultPlan| {
        let pipeline = warmed(2);
        let model = constant_model(pipeline.dim(), 2.5);
        let metrics = Metrics::collecting();
        let server = ModelServer::builder(pipeline, model)
            .engine(ExecutionEngine::Threaded { workers: 3 })
            .fault_hook(Arc::new(FaultInjector::new(plan)))
            .metrics(metrics.clone())
            .batching(BatchConfig {
                max_batch: 8,
                max_delay_secs: 10.0,
                capacity: 4096,
            })
            .build();
        let tickets: Vec<Ticket> = (0..120)
            .map(|i| {
                let r = if i % 11 == 5 {
                    Record::new(vec![Value::Text("bad".into())])
                } else {
                    record(i as f64, i as f64 * -0.5)
                };
                server.enqueue(r).expect("capacity")
            })
            .collect();
        server.flush_all();
        let outcomes: Vec<Option<(u64, u64)>> = tickets
            .iter()
            .map(|t| t.wait().map(|p| (p.value.to_bits(), p.version)))
            .collect();

        // The exact accounting invariant holds under fire, and the cdp-obs
        // counters mirror the server's ledger one for one.
        assert_eq!(
            server.attempts(),
            server.queries_served() + server.queries_rejected() + server.batch_failures()
        );
        assert_eq!(server.attempts(), 120);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("serving.served"), server.queries_served());
        assert_eq!(snap.counter("serving.rejected"), server.queries_rejected());
        assert_eq!(
            snap.counter("serving.batch_failures"),
            server.batch_failures()
        );
        (
            outcomes,
            server.queries_served(),
            server.queries_rejected(),
            server.batch_failures(),
        )
    };

    let first = drive(plan);
    let second = drive(plan);
    // Same seed ⇒ identical outcomes, ticket by ticket.
    assert_eq!(first, second);

    // Recoverable-or-fatal, every non-failed batch scores exactly like the
    // fault-free server: compare against a no-faults drive.
    let clean = drive(FaultPlan::none());
    assert_eq!(clean.3, 0, "no-faults drive loses nothing");
    for (with_fault, fault_free) in first.0.iter().zip(&clean.0) {
        if with_fault.is_some() {
            assert_eq!(with_fault, fault_free, "absorbed panics must not perturb");
        }
    }
}

/// Satellite 4: the audited `rejected` accounting reconciles exactly with
/// the `serving.rejected` counter across both scoring paths, including
/// under concurrent mixed traffic.
#[test]
fn rejected_accounting_reconciles_exactly_with_metrics() {
    let metrics = Metrics::collecting();
    let pipeline = warmed(1);
    let model = constant_model(pipeline.dim(), 1.0);
    let server = ModelServer::builder(pipeline, model)
        .metrics(metrics.clone())
        .batching(BatchConfig {
            max_batch: 4,
            max_delay_secs: 10.0,
            capacity: 4096,
        })
        .build();

    let workers: Vec<_> = (0..3)
        .map(|w| {
            let s = server.clone();
            std::thread::spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..60 {
                    let malformed = (i + w) % 4 == 0;
                    let r = if malformed {
                        Record::new(vec![Value::Text("bad".into())])
                    } else {
                        record(i as f64, 0.0)
                    };
                    if i % 2 == 0 {
                        let _ = s.predict(&r);
                    } else {
                        tickets.push(s.enqueue(r).expect("capacity"));
                    }
                }
                s.flush_all();
                for t in tickets {
                    let _ = t.wait();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("traffic worker");
    }
    server.flush_all();

    assert_eq!(server.attempts(), 3 * 60);
    assert_eq!(
        server.attempts(),
        server.queries_served() + server.queries_rejected() + server.batch_failures()
    );
    assert!(server.queries_rejected() > 0, "mixed traffic must reject");
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("serving.served"), server.queries_served());
    assert_eq!(snap.counter("serving.rejected"), server.queries_rejected());
    assert_eq!(
        snap.counter("serving.default.rejected"),
        server.queries_rejected()
    );
    assert_eq!(snap.counter("serving.queue_overflow"), 0);
}

/// The background deadline flusher drains queued queries without explicit
/// flush calls, and dropping its handle stops the thread cleanly.
#[test]
fn background_flusher_meets_deadlines() {
    let pipeline = warmed(2);
    let model = constant_model(pipeline.dim(), 1.0);
    let server = ModelServer::builder(pipeline, model)
        .batching(BatchConfig {
            max_batch: 1024, // size trigger never fires — deadline must
            max_delay_secs: 0.002,
            capacity: 4096,
        })
        .build();
    let _flusher = server.start_flusher();
    let tickets: Vec<Ticket> = (0..40)
        .map(|i| server.enqueue(record(i as f64, 1.0)).expect("capacity"))
        .collect();
    for t in tickets {
        assert!(t.wait().is_some(), "flusher must fulfil every ticket");
    }
    assert_eq!(server.queries_served(), 40);
}
