//! Cross-crate property-based tests of the platform's core invariants.

use cdpipe::datagen::{
    taxi::TaxiConfig, taxi::TaxiGenerator, url::UrlConfig, url::UrlGenerator, ChunkStream,
};
use cdpipe::linalg::ops::harmonic;
use cdpipe::sampling::{empirical_mu, mu_time_based, mu_uniform, mu_window, SamplingStrategy};
use cdpipe::storage::{
    ChunkStore, FeatureChunk, LabeledPoint, RawChunk, Record, StorageBudget, Timestamp, Value,
};
use proptest::prelude::*;

fn raw(ts: u64) -> RawChunk {
    RawChunk::new(
        Timestamp(ts),
        vec![Record::new(vec![Value::Num(ts as f64)])],
    )
}

fn feat(ts: u64) -> FeatureChunk {
    FeatureChunk::new(
        Timestamp(ts),
        Timestamp(ts),
        vec![LabeledPoint::new(1.0, vec![ts as f64].into())],
    )
}

proptest! {
    /// The materialized set is always exactly the newest min(m, n) chunks.
    #[test]
    fn store_materializes_newest_m(n in 1usize..80, m in 0usize..80) {
        let mut store = ChunkStore::new(StorageBudget::MaxChunks(m));
        for t in 0..n as u64 {
            store.put_raw(raw(t)).unwrap();
            store.put_feature(feat(t)).unwrap();
        }
        let expect = m.min(n);
        prop_assert_eq!(store.materialized_count(), expect);
        let ts = store.materialized_timestamps();
        for (i, t) in ts.iter().enumerate() {
            prop_assert_eq!(t.0 as usize, n - expect + i);
        }
    }

    /// Eq. 4 equals the direct average of per-step hypergeometric means.
    #[test]
    fn eq4_equals_direct_average(total in 2usize..400, frac in 0.01f64..1.0) {
        let m = ((total as f64 * frac) as usize).clamp(1, total);
        let direct: f64 = (1..=total)
            .map(|n| if n <= m { 1.0 } else { m as f64 / n as f64 })
            .sum::<f64>() / total as f64;
        let closed = mu_uniform(m, total);
        prop_assert!((direct - closed).abs() < 1e-9, "direct {direct} vs closed {closed}");
    }

    /// Eq. 5 equals the direct average in its three-regime form.
    #[test]
    fn eq5_equals_direct_average(total in 4usize..300, mf in 0.01f64..0.9, wf in 0.05f64..1.0) {
        let m = ((total as f64 * mf) as usize).clamp(1, total);
        let w = ((total as f64 * wf) as usize).clamp(1, total);
        let direct: f64 = (1..=total)
            .map(|n| {
                if n <= m { 1.0 }
                else if n <= w { m as f64 / n as f64 }
                else { (m as f64 / w as f64).min(1.0) }
            })
            .sum::<f64>() / total as f64;
        let closed = mu_window(m, w, total);
        prop_assert!((direct - closed).abs() < 1e-9, "direct {direct} vs closed {closed} (m={m}, w={w}, N={total})");
    }

    /// μ orderings hold for every capacity: window(w) ≥ its uniform floor,
    /// and time-based ≥ uniform.
    #[test]
    fn mu_orderings(total in 10usize..300, mf in 0.05f64..0.95) {
        let m = ((total as f64 * mf) as usize).clamp(1, total);
        let uniform = mu_uniform(m, total);
        let time = mu_time_based(m, total);
        prop_assert!(time >= uniform - 1e-12);
        let w = (total / 2).max(1);
        let window = mu_window(m, w, total);
        prop_assert!(window >= uniform - 1e-12);
    }

    /// Harmonic numbers satisfy H_{2n} − H_n → ln 2.
    #[test]
    fn harmonic_difference_approaches_ln2(n in 500u64..5_000) {
        let diff = harmonic(2 * n) - harmonic(n);
        prop_assert!((diff - 2f64.ln()).abs() < 1e-3);
    }

    /// Generator determinism: any chunk is a pure function of (seed, index).
    #[test]
    fn url_chunks_deterministic(index in 0usize..18, seed in 0u64..1000) {
        let config = UrlConfig {
            seed,
            days: 6,
            chunks_per_day: 3,
            rows_per_chunk: 8,
            base_vocab: 100,
            vocab_growth_per_day: 5,
            tokens_per_row: 4,
            lexical_features: 4,
            ..UrlConfig::repo_scale()
        };
        let a = UrlGenerator::new(config.clone());
        let b = UrlGenerator::new(config);
        prop_assert_eq!(a.chunk(index), b.chunk(index));
    }

    /// Taxi trips always have dropoff ≥ pickup − ε for normal rows, and all
    /// record fields are numeric.
    #[test]
    fn taxi_records_well_formed(index in 0usize..20) {
        let g = TaxiGenerator::new(TaxiConfig {
            hours: 20,
            initial_hours: 2,
            rows_per_chunk: 16,
            ..TaxiConfig::repo_scale()
        });
        let chunk = g.chunk(index);
        for r in &chunk.records {
            prop_assert_eq!(r.len(), 7);
            for v in r.values() {
                prop_assert!(v.as_num().is_some());
            }
        }
    }

    /// Empirical μ via simulation is within tolerance of the closed forms
    /// for all three strategies (moderate N keeps the test fast).
    #[test]
    fn empirical_matches_theory(mf in 0.1f64..0.9, seed in 0u64..50) {
        let total = 400;
        let m = ((total as f64 * mf) as usize).max(1);
        let est = empirical_mu(SamplingStrategy::Uniform, m, total, 10, seed);
        prop_assert!((est.mu - mu_uniform(m, total)).abs() < 0.06);
        let est = empirical_mu(SamplingStrategy::TimeBased, m, total, 10, seed);
        prop_assert!((est.mu - mu_time_based(m, total)).abs() < 0.06);
    }
}

#[test]
fn streams_report_consistent_ranges() {
    let url = UrlGenerator::new(UrlConfig {
        days: 5,
        chunks_per_day: 2,
        rows_per_chunk: 4,
        ..UrlConfig::repo_scale()
    });
    assert_eq!(url.total_chunks(), 10);
    assert_eq!(url.deployment_range(), 2..10);
    assert_eq!(url.initial().len(), 2);
}
