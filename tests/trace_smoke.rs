//! Causal-tracing smoke tests: a small continuous deployment on the
//! threaded engine must produce a well-formed span tree that crosses the
//! worker pool, export cleanly to chrome://tracing and flamegraph formats,
//! reconcile its chunk lineage with the tiered-store counters, and perturb
//! nothing — results are bit-identical with tracing on and off.

use cdpipe::obs::{validate_chrome_trace, LineageEventKind};
use cdpipe::prelude::*;

fn traced_config() -> DeploymentConfig {
    let mut config = DeploymentConfig::continuous(2, 3, SamplingStrategy::Uniform);
    // A bounded cache forces engine-parallel re-materialization, so the
    // span tree includes worker-pool fan-out beyond the initial fit.
    config.optimization.budget = StorageBudget::MaxChunks(4);
    config.engine = cdpipe::engine::ExecutionEngine::Threaded { workers: 2 };
    config.collect_metrics = true;
    config.collect_traces = true;
    config
}

#[test]
fn tracing_never_perturbs_the_deployment() {
    let (stream, spec) = url_spec(SpecScale::Tiny);
    let config = traced_config();
    let traced = run_deployment(&stream, &spec, &config);
    let mut silent = config;
    silent.collect_traces = false;
    let baseline = run_deployment(&stream, &spec, &silent);

    // Bit-identical data fields…
    assert_eq!(baseline.final_weights, traced.final_weights);
    assert_eq!(baseline.error_curve, traced.error_curve);
    assert_eq!(baseline.cost_curve, traced.cost_curve);
    assert_eq!(baseline.final_error.to_bits(), traced.final_error.to_bits());
    assert_eq!(baseline.total_secs.to_bits(), traced.total_secs.to_bits());
    assert_eq!(baseline.proactive_runs, traced.proactive_runs);
    assert_eq!(baseline.tiered_stats, traced.tiered_stats);
    // …including the full metrics snapshot (tracing adds no metric).
    assert_eq!(baseline.metrics.counters, traced.metrics.counters);
    assert_eq!(baseline.metrics.gauges.len(), traced.metrics.gauges.len());
    // Lineage timestamps are wall-clock, so compare the event sequences.
    let kinds = |m: &MetricsSnapshot| -> Vec<(u64, Vec<LineageEventKind>)> {
        m.lineage
            .iter()
            .map(|(ts, entries)| (*ts, entries.iter().map(|e| e.kind).collect()))
            .collect()
    };
    assert_eq!(kinds(&baseline.metrics), kinds(&traced.metrics));
    assert_eq!(baseline.alerts.len(), traced.alerts.len());
    // Only the trace itself differs.
    assert!(baseline.trace.is_empty());
    assert!(!traced.trace.is_empty());
}

#[test]
fn span_tree_is_well_formed_and_crosses_worker_threads() {
    let (stream, spec) = url_spec(SpecScale::Tiny);
    let result = run_deployment(&stream, &spec, &traced_config());
    let trace = &result.trace;

    assert_eq!(trace.dropped_spans, 0, "tiny run must fit the buffer");
    if let Err(e) = trace.validate() {
        panic!("malformed span tree: {e}");
    }

    // Exactly one root: the deployment itself.
    let roots = trace.roots();
    assert_eq!(roots.len(), 1, "roots: {roots:?}");
    assert_eq!(roots[0].name, "deployment.run");
    assert_eq!(trace.span_count("deployment.initial_fit"), 1);
    let deployment_chunks = stream.total_chunks() - stream.initial_chunks();
    assert_eq!(trace.span_count("deployment.chunk"), deployment_chunks);
    assert_eq!(
        trace.span_count("proactive.fire") as u64,
        result.proactive_runs
    );
    assert_eq!(trace.span_count("dm.sample") as u64, result.proactive_runs);

    // Causality: every engine task hangs under an engine map, every map
    // under a deployment phase or trainer span.
    assert!(trace.span_count("engine.map") > 0);
    assert!(trace.span_count("engine.task") > 0);
    for span in &trace.spans {
        match span.name.as_str() {
            "engine.task" => {
                assert_eq!(trace.parent_name(span), Some("engine.map"), "{span:?}");
            }
            "engine.map" => {
                let parent = trace.parent_name(span);
                assert!(
                    matches!(
                        parent,
                        Some(
                            "trainer.fit"
                                | "trainer.step"
                                | "deployment.initial_fit"
                                | "deployment.retrain"
                                | "deployment.chunk"
                                | "proactive.fire"
                        )
                    ),
                    "engine.map parented under {parent:?}"
                );
            }
            _ => {}
        }
    }

    // The tree genuinely spans the worker pool: engine tasks ran on
    // threads other than the deployment driver's.
    assert!(
        trace.crosses_threads(),
        "span tree must cross worker threads"
    );
}

#[test]
fn exports_are_loadable() {
    let (stream, spec) = url_spec(SpecScale::Tiny);
    let result = run_deployment(&stream, &spec, &traced_config());

    let chrome = result.trace.to_chrome_trace();
    match validate_chrome_trace(&chrome) {
        // Thread-name metadata + one B and one E per span.
        Ok(events) => assert_eq!(
            events,
            result.trace.threads.len() + 2 * result.trace.spans.len()
        ),
        Err(e) => panic!("invalid chrome trace: {e}"),
    }

    let folded = result.trace.to_folded_stacks();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, weight) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => panic!("malformed folded line: {line:?}"),
        };
        assert!(stack.starts_with("deployment.run"), "{line:?}");
        if let Err(e) = weight.parse::<u64>() {
            panic!("weight not an integer in {line:?}: {e}");
        }
    }
}

#[test]
fn lineage_reconciles_with_tiered_stats() {
    let (stream, spec) = url_spec(SpecScale::Tiny);
    let mut config = traced_config();
    config.spill_to_disk = true;
    let result = run_deployment(&stream, &spec, &config);
    let snap = &result.metrics;
    let tiered = result.tiered_stats;

    assert_eq!(snap.dropped_lineage, 0, "tiny run must fit the lineage log");
    // Every chunk that entered the platform has an arrival + materialize.
    let total_chunks = stream.total_chunks() as u64;
    assert_eq!(snap.lineage_count(LineageEventKind::Arrival), total_chunks);
    // Every chunk is preprocessed with statistic updates exactly once:
    // in the initial fit or on the online path.
    assert_eq!(
        snap.lineage_count(LineageEventKind::Transform),
        total_chunks
    );
    assert_eq!(
        snap.lineage_count(LineageEventKind::Materialize),
        total_chunks
    );
    // Tier transitions reconcile exactly with the store's own counters.
    assert!(tiered.spills > 0, "MaxChunks(4) must evict and spill");
    assert_eq!(snap.lineage_count(LineageEventKind::Spill), tiered.spills);
    assert_eq!(
        snap.lineage_count(LineageEventKind::SpillRead),
        tiered.disk_hits
    );
    assert_eq!(
        snap.lineage_count(LineageEventKind::Rematerialize),
        tiered.recomputes
    );
    assert_eq!(
        snap.lineage_count(LineageEventKind::SpillReadFallback),
        tiered.read_fallbacks
    );
    assert_eq!(
        snap.lineage_count(LineageEventKind::LostSpill),
        tiered.lost_spills
    );
    // Proactive training sampled from the history.
    assert!(snap.lineage_count(LineageEventKind::SampledForTraining) > 0);
}

#[test]
fn lost_spills_raise_an_alert_in_result_and_event_log() {
    let (stream, spec) = url_spec(SpecScale::Tiny);
    let mut config = traced_config();
    config.spill_to_disk = true;
    // Every spill write fails past the retry budget ⇒ lost spills are
    // certain, and the store.lost_spills SLA rule must fire.
    config.faults = FaultPlan {
        seed: 5,
        disk_write_error: 1.0,
        ..FaultPlan::none()
    };
    let result = match try_run_deployment(&stream, &spec, &config) {
        Ok(r) => r,
        Err(e) => panic!("lost spills are absorbed, not fatal: {e}"),
    };
    assert!(result.tiered_stats.lost_spills > 0);
    assert!(
        result.alerts.iter().any(|a| a.rule == "store.lost_spills"),
        "alerts: {:?}",
        result.alerts
    );
    // Every fired alert is also appended to the event log.
    for alert in &result.alerts {
        assert!(
            result
                .metrics
                .events
                .iter()
                .any(|e| e.name == "alert.fired" && e.detail == alert.message()),
            "missing alert.fired event for {alert:?}"
        );
    }

    // A clean run keeps that alert quiet.
    let mut clean = traced_config();
    clean.spill_to_disk = true;
    let clean_result = run_deployment(&stream, &spec, &clean);
    assert!(clean_result
        .alerts
        .iter()
        .all(|a| a.rule != "store.lost_spills"));
}
