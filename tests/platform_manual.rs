//! Drives the platform components by hand (data manager + pipeline manager +
//! proactive trainer + scheduler), without the packaged deployment driver —
//! validating that the architecture's pieces compose, and injecting failures
//! the packaged driver never produces (raw-chunk loss mid-deployment).

use cdpipe::core::{DataManager, PipelineManager, ProactiveTrainer, Scheduler, SchedulerContext};
use cdpipe::datagen::ChunkStream;
use cdpipe::eval::{CostLedger, PrequentialEvaluator};
use cdpipe::prelude::*;
use cdpipe::storage::Timestamp;

#[test]
fn manual_loop_with_chunk_loss() {
    let (stream, spec) = url_spec(SpecScale::Tiny);
    let mut dm = DataManager::new(StorageBudget::MaxChunks(4), SamplingStrategy::TimeBased, 99);
    let mut pm = PipelineManager::new(spec.build_pipeline(), &spec.sgd, spec.online_batch);
    let trainer = ProactiveTrainer::new();
    let scheduler = Scheduler::Static { every_chunks: 2 };
    let mut evaluator = PrequentialEvaluator::new(spec.metric, 0);
    let mut ledger = CostLedger::default();

    // Initial phase.
    let initial = stream.initial();
    let (_, fcs) = pm.initial_fit(&initial, &spec.sgd, &mut ledger);
    for (raw, fc) in initial.into_iter().zip(fcs) {
        dm.ingest_raw(raw).expect("unique timestamps");
        dm.store_features(fc).expect("raw chunk present");
    }

    let mut chunks_since = 0usize;
    let mut proactive_runs = 0usize;
    for idx in stream.deployment_range() {
        let raw = stream.chunk(idx);
        dm.ingest_raw(raw.clone()).expect("unique timestamps");
        let fc = pm.process_online_chunk(&raw, &mut evaluator, &mut ledger);
        dm.store_features(fc).expect("raw chunk present");
        chunks_since += 1;

        // Failure injection: every 4th chunk, an *old* raw chunk vanishes
        // from the store (storage failure / retention policy). The sampler
        // must keep working, skipping the lost chunk.
        if idx % 4 == 0 && idx > 4 {
            dm.store_mut().drop_chunk(Timestamp((idx - 4) as u64));
        }

        let ctx = SchedulerContext {
            chunk_period_secs: 60.0,
            last_training_secs: 0.0,
            avg_prediction_latency: 1e-6,
            prediction_rate: 1.0,
            elapsed_secs: chunks_since as f64 * 60.0,
            chunks_since_last: chunks_since,
            drift_level: 0,
        };
        if scheduler.should_fire(&ctx) {
            chunks_since = 0;
            let sampled = dm.sample(6);
            // No sampled chunk may reference lost data.
            for chunk in &sampled {
                assert!(dm.store().raw(chunk.timestamp()).is_some());
            }
            let outcome = trainer.execute(&mut pm, sampled, &mut ledger);
            proactive_runs += 1;
            assert!(outcome.points > 0, "sampling must survive chunk loss");
        }
    }

    assert!(proactive_runs >= 5);
    assert!(evaluator.count() > 0);
    assert!(evaluator.error() < 0.5);
    // The budget of 4 materialized chunks was respected throughout.
    assert!(dm.materialized_count() <= 4);
    // Chunk loss actually happened.
    assert!(dm.chunk_count() < stream.total_chunks());
}

#[test]
fn drift_adaptive_scheduler_fires_more_under_pressure() {
    let scheduler = Scheduler::DriftAdaptive { every_chunks: 6 };
    let fires = |drift_level: u8| -> usize {
        let mut count = 0;
        let mut since = 0usize;
        for _ in 0..60 {
            since += 1;
            let ctx = SchedulerContext {
                chunk_period_secs: 60.0,
                last_training_secs: 0.1,
                avg_prediction_latency: 1e-6,
                prediction_rate: 1.0,
                elapsed_secs: since as f64 * 60.0,
                chunks_since_last: since,
                drift_level,
            };
            if scheduler.should_fire(&ctx) {
                count += 1;
                since = 0;
            }
        }
        count
    };
    let stable = fires(0);
    let warning = fires(1);
    let drifting = fires(2);
    assert!(stable < warning);
    assert!(warning < drifting);
    assert_eq!(drifting, 60); // every chunk under full drift
}

#[test]
fn rematerialized_sample_feeds_valid_training_step() {
    // Force every sampled chunk through the re-materialization path
    // (budget 0) and verify the SGD step still runs on the union.
    let (stream, spec) = taxi_spec(SpecScale::Tiny);
    let mut dm = DataManager::new(StorageBudget::MaxChunks(0), SamplingStrategy::Uniform, 5);
    let mut pm = PipelineManager::new(spec.build_pipeline(), &spec.sgd, spec.online_batch);
    let mut evaluator = PrequentialEvaluator::new(spec.metric, 0);
    let mut ledger = CostLedger::default();

    for idx in 0..stream.initial_chunks() + 6 {
        let raw = stream.chunk(idx);
        dm.ingest_raw(raw.clone()).expect("unique timestamps");
        let fc = pm.process_online_chunk(&raw, &mut evaluator, &mut ledger);
        dm.store_features(fc).expect("raw chunk present");
    }
    assert_eq!(dm.materialized_count(), 0);
    let sampled = dm.sample(4);
    assert!(sampled.iter().all(|s| !s.is_materialized()));
    let steps_before = pm.trainer().steps();
    let outcome = ProactiveTrainer::new().execute(&mut pm, sampled, &mut ledger);
    assert_eq!(outcome.rematerialized_chunks, 4);
    assert_eq!(outcome.materialized_chunks, 0);
    assert_eq!(pm.trainer().steps(), steps_before + 1);
}
