//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io mirror, so the workspace patches
//! `proptest` to this self-contained property-testing runner. It keeps the
//! API shape the tests use — `proptest! { #[test] fn f(x in strategy) {..} }`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`,
//! `prop::collection::vec`, `prop::bool::ANY`, ranges and tuples as
//! strategies, `.prop_map` — but replaces shrinking-based exploration with
//! plain deterministic random sampling: each test runs a fixed number of
//! cases (default 32, override with `PROPTEST_CASES`) from a seed derived
//! from the test name, so failures reproduce exactly across runs.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Default number of random cases per property (see `PROPTEST_CASES`).
pub const DEFAULT_CASES: usize = 32;

/// Number of cases to run, honoring the `PROPTEST_CASES` env override.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// The deterministic generator driving every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary string (the test name).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::*;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value *tree* (no shrinking): a
    /// strategy simply samples a value from the deterministic generator.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Union<T> {
        /// Builds a union from erased samplers (one per alternative).
        pub fn new(choices: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs an alternative");
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.choices.len() as u64) as usize;
            (self.choices[pick])(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// `&str` as a strategy: a simplified regex interpretation producing
    /// short lowercase ASCII words (covers the `"[a-z]{1,8}"`-style
    /// patterns the tests use; arbitrary regexes are not supported).
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let len = 1 + rng.below(8) as usize;
            (0..len)
                .map(|_| char::from(b'a' + rng.below(26) as u8))
                .collect()
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;
}

pub mod prelude {
    //! Single-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` path alias used inside tests.

        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with a formatted message instead of panicking mid-generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            ));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $({
                let strategy = $strategy;
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::strategy::Strategy::sample(&strategy, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running [`cases`] deterministic random cases.
///
/// The body may use `prop_assert*` (fails the case with context) or
/// `return Ok(())` to skip a case early, mirroring real proptest.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let mut rng = $crate::TestRng::for_test(::std::stringify!($name));
            let cases = $crate::cases();
            for case in 0..cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                )*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "property `{}` failed on case {}/{}:\n{}",
                        ::std::stringify!($name),
                        case + 1,
                        cases,
                        message
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 3usize..10, v in prop::collection::vec(-1.0..1.0f64, 0..5), b in prop::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 5);
            prop_assert!(b || !b);
        }

        #[test]
        fn oneof_and_map(pick in prop_oneof![Just(1u8), Just(2u8)], s in (0u32..5).prop_map(|n| n * 10)) {
            prop_assert!(pick == 1 || pick == 2);
            prop_assert_eq!(s % 10, 0);
            if s == 40 {
                return Ok(());
            }
            prop_assert!(s < 40);
        }

        #[test]
        fn strings_match_simple_word_pattern(tokens in prop::collection::vec("[a-z]{1,8}", 1..4)) {
            for t in &tokens {
                prop_assert!((1..=8).contains(&t.len()));
                prop_assert!(t.bytes().all(|b| b.is_ascii_lowercase()));
            }
        }
    }
}
