//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io mirror, so the workspace patches
//! `serde` to this shim. The codebase only ever *derives*
//! `Serialize`/`Deserialize` (no serializer backend such as `serde_json` is
//! present), so marker traits with blanket impls plus no-op derive macros
//! are behaviorally complete: every `#[derive(Serialize, Deserialize)]` and
//! `#[serde(...)]` attribute compiles, and nothing can call a
//! (nonexistent) serializer. If a future change adds a real wire format,
//! replace this shim with a vendored copy of upstream serde.

/// Marker for types declared serializable.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types declared deserializable.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
