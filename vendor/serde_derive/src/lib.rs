//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The serde shim's traits carry blanket impls, so these derives emit no
//! code at all — they exist so `#[derive(Serialize, Deserialize)]` and the
//! `#[serde(...)]` helper attribute (e.g. `#[serde(skip)]`) parse.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
