//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io mirror, so the workspace patches
//! `bytes` to this implementation of the subset the chunk codec uses:
//! [`BytesMut`] as an append-only builder, [`Bytes`] as the frozen result,
//! and the [`Buf`]/[`BufMut`] traits with big-endian integer accessors
//! (matching upstream's `get_*`/`put_*` wire format, so any persisted
//! chunk files stay readable if the real crate is restored).

use std::ops::Deref;

/// An immutable byte buffer (here: a plain owned vector, no refcounted
/// slicing — the codec never splits buffers).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// A growable byte buffer for building encoded payloads.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write access to a byte buffer; integer writes are big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte buffer; integer reads are big-endian.
///
/// # Panics
/// All accessors panic when fewer than the requested bytes remain, exactly
/// like upstream `bytes` — callers are expected to check [`Buf::remaining`]
/// first (the chunk decoder does).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads exactly `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "cannot advance past end of buffer");
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(515);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        buf.put_f64(-2.5);
        buf.put_slice(b"tail");
        let frozen = buf.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8 + 4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 515);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_f64(), -2.5);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_wire_format() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x0102);
        assert_eq!(&buf[..], &[0x01, 0x02]);
    }
}
