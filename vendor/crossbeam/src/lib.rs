//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace patches `crossbeam` to this minimal implementation of the one
//! API surface the codebase uses: an unbounded MPMC channel
//! ([`channel::unbounded`], [`channel::Sender`], [`channel::Receiver`])
//! with blocking `recv` that disconnects when every sender is dropped.
//! Semantics follow the real crate for that subset; performance is a plain
//! mutex + condvar queue, which is plenty for chunk-granularity jobs.

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue and wakes one receiver.
        ///
        /// Unbounded send never blocks. With receivers possibly gone, the
        /// message is still queued (matching crossbeam, where send only
        /// fails once every `Receiver` has been dropped — a case this
        /// stand-in does not track because the engine never drops its
        /// receivers while senders are live).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders += 1;
            drop(inner);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                // Wake every blocked receiver so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel poisoned");
            }
        }

        /// Returns a queued message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.queue.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_unblocks_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let handle = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(handle.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn multi_consumer_drains_everything() {
            let (tx, rx) = unbounded();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<u32> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<u32>>());
        }
    }
}
