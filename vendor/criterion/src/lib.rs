//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io mirror, so the workspace patches
//! `criterion` to this minimal harness exposing the API subset the `benches/`
//! targets use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, and `Bencher::iter`. Instead of statistical sampling and
//! HTML reports it times a fixed batch of iterations per benchmark and
//! prints mean wall-clock per iteration — enough to compare alternatives
//! locally and to keep `cargo bench` compiling and running.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement configuration shared by all benchmarks in a run.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// A benchmark's display identity: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identity from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identity from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            label: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Work-per-iteration declaration (recorded for display only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough to smooth scheduler noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call, then timed batches until ~100ms or `iters` calls.
        let _ = std::hint::black_box(routine());
        let budget = Duration::from_millis(100);
        let start = Instant::now();
        let mut done = 0u64;
        while done < self.iters && start.elapsed() < budget {
            let _ = std::hint::black_box(routine());
            done += 1;
        }
        self.mean = start.elapsed() / done.max(1) as u32;
    }
}

fn report(group: Option<&str>, id: &BenchmarkId, throughput: Option<Throughput>, b: &Bencher) {
    let name = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    let per_iter = b.mean.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("bench: {name:<60} {:>12.3} µs/iter{rate}", per_iter * 1e6);
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        report(None, &id, None, &bencher);
        self
    }
}

/// A group of related benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        report(Some(&self.name), &id, self.throughput, &bencher);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(Some(&self.name), &id, self.throughput, &bencher);
        self
    }

    /// Ends the group (reporting is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
