//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io mirror, so the workspace patches
//! `rand` to this self-contained implementation of the subset the codebase
//! uses: a seedable deterministic generator ([`rngs::StdRng`], SplitMix64
//! underneath), [`RngExt::random`] / [`RngExt::random_range`],
//! [`seq::SliceRandom::shuffle`], and [`seq::index::sample`].
//!
//! Determinism is the contract that matters here — every dataset and
//! shuffle in the repo is seeded, and reproducibility of experiments
//! depends on `StdRng::seed_from_u64` producing the same stream forever.
//! The stream differs from upstream rand's ChaCha-based `StdRng` (upstream
//! documents its stream as unstable across versions anyway); statistical
//! quality of SplitMix64 is ample for synthetic data generation.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// The generator's raw internal state, for exact persistence: a
        /// generator rebuilt with [`StdRng::from_state`] continues the same
        /// stream from the same position.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator mid-stream from a state captured with
        /// [`StdRng::state`].
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): one add + two xor-mul
            // mixes per output, passes BigCrush, and every seed is valid.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible uniformly at random (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::from_rng(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods available on every generator.
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range` (half-open or inclusive).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod seq {
    //! Sequence-related randomness: shuffling and index sampling.

    use crate::RngCore;

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Shuffles the slice with a Fisher–Yates pass driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Sampling distinct indices without replacement.

        use crate::RngCore;

        /// A set of distinct indices drawn by [`sample`].
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates the sampled indices in draw order.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes the sample into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Draws `amount` distinct indices uniformly from `0..length`
        /// (partial Fisher–Yates).
        ///
        /// # Panics
        /// If `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from a pool of {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(-3..7i32);
            assert!((-3..7).contains(&v));
            let w = rng.random_range(1..=6u8);
            assert!((1..=6).contains(&w));
            let f = rng.random_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let picked = super::seq::index::sample(&mut rng, 100, 30);
        assert_eq!(picked.len(), 30);
        let mut seen = std::collections::HashSet::new();
        for i in picked.iter() {
            assert!(i < 100);
            assert!(seen.insert(i), "duplicate index {i}");
        }
    }
}
