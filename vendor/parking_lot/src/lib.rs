//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io mirror, so the workspace patches
//! `parking_lot` to thin wrappers over `std::sync` primitives exposing
//! parking_lot's API shape (guards returned directly, no `Result`). Poison
//! is treated the way parking_lot treats it — it doesn't exist: a poisoned
//! std lock here means a thread panicked while holding the guard, and we
//! propagate that as a panic rather than silently continuing.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's panic-free API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("lock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("lock poisoned")
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("lock poisoned")
    }

    /// Mutable access without locking (the `&mut` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("lock poisoned")
    }
}

/// A mutual-exclusion lock with parking_lot's panic-free API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("lock poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("lock poisoned")
    }

    /// Mutable access without locking (the `&mut` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
